package pmf

import "sync/atomic"

// Hot-path operation counters. Convolution is the scheduler's dominant
// cost (§IV-B chains one convolution per queued task per candidate core),
// so the package keeps process-global atomic tallies that the experiment
// harness samples before and after a run to attribute work. One atomic add
// per convolution is noise next to the O(n·m) impulse product itself.
var (
	opConvolutions      atomic.Int64
	opBucketed          atomic.Int64
	opCompactions       atomic.Int64
	opImpulsesCompacted atomic.Int64
	opGridConvolutions  atomic.Int64
	opFFTConvolutions   atomic.Int64
	opGridRhoEvals      atomic.Int64
)

// OpCounts is a sample of the package's operation counters.
type OpCounts struct {
	// Convolutions counts ConvolveN calls that performed an impulse
	// product (degenerate shift shortcuts are excluded).
	Convolutions int64 `json:"convolutions"`
	// BucketedConvolutions counts the subset of Convolutions that took the
	// direct-to-buckets fast path.
	BucketedConvolutions int64 `json:"bucketedConvolutions"`
	// Compactions counts explicit Compact calls that reduced a support.
	Compactions int64 `json:"compactions"`
	// ImpulsesCompacted counts impulses eliminated by compaction (input
	// minus output support sizes, summed over Compactions).
	ImpulsesCompacted int64 `json:"impulsesCompacted"`
	// GridConvolutions counts lattice convolutions (Grid.Convolve and
	// Grid.ConvolveLattice) on the fixed-grid fast path.
	GridConvolutions int64 `json:"gridConvolutions"`
	// FFTConvolutions counts the subset of GridConvolutions dispatched to
	// the FFT kernel above the support-length crossover.
	FFTConvolutions int64 `json:"fftConvolutions"`
	// GridRhoEvals counts ρ evaluations answered by TripleConvCDF — a
	// prefix-sum double loop in place of a convolution plus CDF walk.
	GridRhoEvals int64 `json:"gridRhoEvals"`
}

// ReadOpCounts samples the counters. Counters increase monotonically for
// the life of the process; subtract two samples to attribute work to an
// interval.
func ReadOpCounts() OpCounts {
	return OpCounts{
		Convolutions:         opConvolutions.Load(),
		BucketedConvolutions: opBucketed.Load(),
		Compactions:          opCompactions.Load(),
		ImpulsesCompacted:    opImpulsesCompacted.Load(),
		GridConvolutions:     opGridConvolutions.Load(),
		FFTConvolutions:      opFFTConvolutions.Load(),
		GridRhoEvals:         opGridRhoEvals.Load(),
	}
}

// Sub returns the per-field difference c - prev.
func (c OpCounts) Sub(prev OpCounts) OpCounts {
	return OpCounts{
		Convolutions:         c.Convolutions - prev.Convolutions,
		BucketedConvolutions: c.BucketedConvolutions - prev.BucketedConvolutions,
		Compactions:          c.Compactions - prev.Compactions,
		ImpulsesCompacted:    c.ImpulsesCompacted - prev.ImpulsesCompacted,
		GridConvolutions:     c.GridConvolutions - prev.GridConvolutions,
		FFTConvolutions:      c.FFTConvolutions - prev.FFTConvolutions,
		GridRhoEvals:         c.GridRhoEvals - prev.GridRhoEvals,
	}
}
