package pmf

import (
	"math"
	"sync"
)

// Real convolution via a single complex FFT: the two real operands are
// packed into the real and imaginary lanes of one complex sequence, so a
// full linear convolution costs one forward and one inverse transform of
// the power-of-two-padded length. This is the large-support path behind
// Grid.Convolve's crossover; the iterative radix-2 kernel below is
// dependency-free and deterministic (fixed butterfly order, recurrence-free
// twiddles from math.Cos/Sin per stage).

// fftScratch holds the reusable complex buffers of one convolution.
type fftScratch struct {
	z, c []complex128
}

var fftPool = sync.Pool{New: func() any { return new(fftScratch) }}

// fftSize returns the transform length for a linear convolution of outLen
// points: the next power of two at or above outLen.
func fftSize(outLen int) int {
	n := 1
	for n < outLen {
		n <<= 1
	}
	return n
}

// fftConvolve returns the linear convolution of a and b (length
// len(a)+len(b)-1). Rounding introduces ~1e-15 relative error per
// coefficient; tiny negative results are clamped to zero so downstream
// prefix sums stay monotone.
func fftConvolve(a, b []float64) []float64 {
	outLen := len(a) + len(b) - 1
	n := fftSize(outLen)
	s := fftPool.Get().(*fftScratch)
	defer fftPool.Put(s)
	if cap(s.z) < n {
		s.z = make([]complex128, n)
		s.c = make([]complex128, n)
	}
	z, c := s.z[:n], s.c[:n]
	for i := range z {
		var re, im float64
		if i < len(a) {
			re = a[i]
		}
		if i < len(b) {
			im = b[i]
		}
		z[i] = complex(re, im)
	}
	fft(z, false)
	// Unpack: with z = a + i·b, A_k = (Z_k + conj(Z_{n-k}))/2 and
	// B_k = (Z_k − conj(Z_{n-k}))/(2i); the convolution spectrum is A_k·B_k.
	for k := 0; k <= n/2; k++ {
		mk := (n - k) & (n - 1)
		zk, zmk := z[k], complex(real(z[mk]), -imag(z[mk]))
		ak := (zk + zmk) * 0.5
		bk := (zk - zmk) * complex(0, -0.5)
		ck := ak * bk
		c[k] = ck
		// The product spectrum of two real sequences is conjugate-symmetric.
		c[mk] = complex(real(ck), -imag(ck))
	}
	fft(c, true)
	inv := 1 / float64(n)
	out := make([]float64, outLen)
	for i := range out {
		v := real(c[i]) * inv
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// fft runs an in-place iterative radix-2 transform of z (len must be a
// power of two); inverse selects the conjugate transform (unscaled — the
// caller divides by n).
func fft(z []complex128, inverse bool) {
	n := len(z)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			z[i], z[j] = z[j], z[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		half := length >> 1
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				// Direct per-index twiddle: slower than a recurrence but
				// free of accumulated rounding, keeping the transform
				// deterministic to the last bit across chunk orders.
				w := complex(math.Cos(ang*float64(k)), math.Sin(ang*float64(k)))
				u := z[start+k]
				v := z[start+k+half] * w
				z[start+k] = u + v
				z[start+k+half] = u - v
			}
		}
	}
}
