package pmf

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the expectation of the distribution. This is the ECT/EET
// expectation operator of §V-A. Returns NaN for the zero PMF.
func (p PMF) Mean() float64 {
	if p.IsZero() {
		return math.NaN()
	}
	m := 0.0
	for i := range p.vals {
		m += p.vals[i] * p.probs[i]
	}
	return m
}

// Variance returns the variance of the distribution. Returns NaN for the
// zero PMF.
func (p PMF) Variance() float64 {
	if p.IsZero() {
		return math.NaN()
	}
	m := p.Mean()
	v := 0.0
	for i := range p.vals {
		d := p.vals[i] - m
		v += d * d * p.probs[i]
	}
	return v
}

// StdDev returns the standard deviation.
func (p PMF) StdDev() float64 { return math.Sqrt(p.Variance()) }

// CDF returns P(X <= x).
func (p PMF) CDF(x float64) float64 {
	if p.IsZero() {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(p.vals), func(i int) bool { return p.vals[i] > x })
	s := 0.0
	for _, q := range p.probs[:i] {
		s += q
	}
	if s > 1 {
		s = 1
	}
	return s
}

// ProbByDeadline returns P(X <= deadline), the per-assignment robustness
// contribution ρ(i,j,k,π,t_l,z) of §IV-C: the probability of the task
// finishing by its deadline ("sum the impulses in the distribution that are
// less than the deadline" — we include equality, since completing exactly
// at the deadline meets it).
func (p PMF) ProbByDeadline(deadline float64) float64 { return p.CDF(deadline) }

// Quantile returns the smallest support value v with P(X <= v) >= u, for
// u in [0,1]. This inverse CDF drives common-random-number sampling of
// actual execution times. Panics for u outside [0,1] or the zero PMF.
func (p PMF) Quantile(u float64) float64 {
	if p.IsZero() {
		panic("pmf: Quantile of zero PMF")
	}
	if u < 0 || u > 1 || math.IsNaN(u) {
		panic(fmt.Sprintf("pmf: Quantile argument %v outside [0,1]", u))
	}
	acc := 0.0
	for i := range p.vals {
		acc += p.probs[i]
		if acc >= u || i == len(p.vals)-1 {
			return p.vals[i]
		}
	}
	return p.vals[len(p.vals)-1]
}

// FromSamples builds a PMF by histogramming samples into at most bins
// equal-width buckets, placing each bucket's impulse at its mass-weighted
// centroid (so the sample mean is preserved exactly). It is how execution
// time pmfs are manufactured from a parametric model (§III-B: "obtained by
// historical, experimental, or analytical techniques").
func FromSamples(samples []float64, bins int) (PMF, error) {
	if len(samples) == 0 {
		return PMF{}, ErrEmpty
	}
	if bins < 1 {
		return PMF{}, fmt.Errorf("pmf: FromSamples needs bins >= 1, got %d", bins)
	}
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return PMF{}, fmt.Errorf("%w: sample %v", ErrBadValue, s)
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo == hi {
		return Point(lo), nil
	}
	span := hi - lo
	mass := make([]float64, bins)
	moment := make([]float64, bins)
	w := 1 / float64(len(samples))
	for _, s := range samples {
		b := int(float64(bins) * (s - lo) / span)
		if b >= bins {
			b = bins - 1
		}
		mass[b] += w
		moment[b] += w * s
	}
	vals := make([]float64, 0, bins)
	probs := make([]float64, 0, bins)
	for b := range mass {
		if mass[b] <= 0 {
			continue
		}
		vals = append(vals, moment[b]/mass[b])
		probs = append(probs, mass[b])
	}
	return New(vals, probs)
}
