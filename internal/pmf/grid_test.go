package pmf

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// randPMF draws a sparse PMF with n impulses on roughly [0, span].
func randPMF(rng *rand.Rand, n int, span float64) PMF {
	vals := make([]float64, 0, n)
	probs := make([]float64, 0, n)
	seen := map[float64]bool{}
	for len(vals) < n {
		v := span * rng.Float64()
		if seen[v] {
			continue
		}
		seen[v] = true
		vals = append(vals, v)
		probs = append(probs, 0.05+rng.Float64())
	}
	return MustNew(vals, probs)
}

// gridPropSteps returns the trial budget for the grid property test;
// verify.sh tier 2 raises it via GRID_PROP_STEPS.
func gridPropSteps(t *testing.T, def int) int {
	if s := os.Getenv("GRID_PROP_STEPS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad GRID_PROP_STEPS %q: %v", s, err)
		}
		return n
	}
	return def
}

// exactChain convolves the operands exactly (no compaction).
func exactChain(ops []PMF) PMF {
	out := ops[0]
	for _, p := range ops[1:] {
		out = ConvolveN(out, p, 0)
	}
	return out
}

// gridChain snaps each operand and folds the lattice product left to
// right, the way the scheduler's tail cache does.
func gridChain(ops []PMF, step float64) Grid {
	w := IdentityGrid(step)
	for _, p := range ops {
		w = w.ConvolveLattice(ToLattice(p, step))
	}
	return w
}

// TestGridConvolveMatchesExact is the quantization-contract property test:
// for random operand chains, the grid chain's CDF at any query point x is
// bracketed by the exact chain's CDF at x ± q·step/2, where q is the
// number of snapped operands (each snap moves an impulse by at most
// step/2, and lattice convolution itself is exact). GRID_PROP_STEPS
// raises the trial budget for the tier-2 gate.
func TestGridConvolveMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := gridPropSteps(t, 120)
	for trial := 0; trial < trials; trial++ {
		span := 1 + 9*rng.Float64()
		step := span / float64(16+rng.Intn(64))
		nOps := 2 + rng.Intn(4)
		ops := make([]PMF, nOps)
		for i := range ops {
			ops[i] = randPMF(rng, 2+rng.Intn(12), span)
		}
		exact := exactChain(ops)
		grid := gridChain(ops, step)

		if m, em := grid.TotalMass(), exact.TotalMass(); math.Abs(m-em) > 1e-9*em {
			t.Fatalf("trial %d: grid mass %v, exact mass %v", trial, m, em)
		}
		// Lattice convolution is exact, so the chain mean may drift from
		// the exact mean only by the per-operand snap, ≤ q·step/2.
		slack := float64(nOps) * step / 2
		if dm := math.Abs(grid.Mean() - exact.Mean()); dm > slack+1e-9 {
			t.Fatalf("trial %d: mean drift %v exceeds slack %v", trial, dm, slack)
		}
		for probe := 0; probe < 32; probe++ {
			x := exact.Min() + (exact.Max()-exact.Min())*(rng.Float64()*1.2-0.1)
			lo := exact.CDF(x - slack - 1e-9)
			hi := exact.CDF(x + slack + 1e-9)
			got := grid.CDF(x)
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Fatalf("trial %d: grid CDF(%v) = %v outside exact bracket [%v, %v] (step %v, ops %d)",
					trial, x, got, lo, hi, step, nOps)
			}
		}
	}
}

// TestConvolveFFTMatchesDirect pins the crossover contract: the FFT path
// and the direct kernel are the same linear convolution up to ~1e-12
// relative mass per bin, so dispatch may pick either without changing
// downstream prefix-sum queries beyond the parity budget.
func TestConvolveFFTMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	step := 0.25
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(1800)
		a := make([]float64, n)
		b := make([]float64, n/2+1)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		ga := newGrid(1, step, a)
		gb := newGrid(2, step, b)

		direct := make([]float64, len(a)+len(b)-1)
		for i, p := range a {
			for j, q := range b {
				direct[i+j] += p * q
			}
		}
		viaFFT := fftConvolve(a, b)
		scale := 0.0
		for _, v := range direct {
			if v > scale {
				scale = v
			}
		}
		for i := range direct {
			if d := math.Abs(viaFFT[i] - direct[i]); d > 1e-12*scale {
				t.Fatalf("trial %d bin %d: fft %v vs direct %v (Δ %v)", trial, i, viaFFT[i], direct[i], d)
			}
		}

		// The dispatching entry point must agree with the hand-rolled
		// direct product no matter which kernel it picked.
		got := ga.Convolve(gb)
		if got.Origin() != 3 || got.Len() != len(direct) {
			t.Fatalf("trial %d: convolve shape (%v, %d), want (3, %d)", trial, got.Origin(), got.Len(), len(direct))
		}
		for i := range direct {
			if d := math.Abs(got.probs[i] - direct[i]); d > 1e-12*scale {
				t.Fatalf("trial %d bin %d: Convolve %v vs direct %v", trial, i, got.probs[i], direct[i])
			}
		}
	}
}

// TestTripleConvCDFMatchesMaterialized checks the ρ kernel against the
// materialized chain it stands in for: P(H+W+E ≤ x) computed by actually
// convolving the three factors. The two differ only by float association
// of the same products.
func TestTripleConvCDFMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		span := 4.0
		step := span / float64(8+rng.Intn(40))
		h := ToLattice(randPMF(rng, 1+rng.Intn(10), span), step)
		e := ToLattice(randPMF(rng, 1+rng.Intn(10), span), step)
		w := gridChain([]PMF{randPMF(rng, 1+rng.Intn(8), span), randPMF(rng, 1+rng.Intn(8), span)}, step)

		full := w.ConvolveLattice(h).ConvolveLattice(e)
		wh := w.ConvolveLattice(h)
		for probe := 0; probe < 24; probe++ {
			x := full.Origin() + (rng.Float64()*1.3-0.15)*float64(full.Len())*step
			want := full.CDF(x)
			got := TripleConvCDF(&h, &w, &e, x)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: TripleConvCDF(%v) = %v, materialized %v", trial, x, got, want)
			}
			// The single-sum kernel over the materialized tail⊛head factor
			// is the same quantity again.
			if got := wh.ConvCDF(&e, x); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: ConvCDF(%v) = %v, materialized %v", trial, x, got, want)
			}
		}
		// Degenerate operands answer 0 by contract.
		if v := TripleConvCDF(&Lattice{}, &w, &e, 10); v != 0 {
			t.Fatalf("zero head: %v", v)
		}
	}
}

// TestLatticeTruncateMatchesPMF pins the grid head-stage primitive against
// the sparse one on identical (already-on-lattice) inputs: same cut index,
// same kept mass, same renormalized impulses.
func TestLatticeTruncateMatchesPMF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		step := 0.5
		l := ToLattice(randPMF(rng, 2+rng.Intn(12), 20), step)
		p := l.PMF()
		cutAt := p.Min() + (p.Max()-p.Min())*rng.Float64()*1.1
		if li, pi := l.SearchValue(cutAt), p.SearchValue(cutAt); li != pi {
			t.Fatalf("trial %d: lattice cut %d, pmf cut %d", trial, li, pi)
		}
		cut := l.SearchValue(cutAt)
		lt, lkept := l.TruncateAt(cut)
		pt, pkept := p.TruncateBelow(cutAt)
		if lkept <= 0 {
			if pkept > 0 {
				t.Fatalf("trial %d: lattice dropped all mass but pmf kept %v", trial, pkept)
			}
			continue
		}
		if lkept != pkept {
			t.Fatalf("trial %d: kept %v vs %v", trial, lkept, pkept)
		}
		lp := lt.PMF()
		if lp.Len() != pt.Len() {
			t.Fatalf("trial %d: support %d vs %d", trial, lp.Len(), pt.Len())
		}
		for i := 0; i < lp.Len(); i++ {
			if lp.Value(i) != pt.Value(i) || lp.Prob(i) != pt.Prob(i) {
				t.Fatalf("trial %d impulse %d: (%v,%v) vs (%v,%v)",
					trial, i, lp.Value(i), lp.Prob(i), pt.Value(i), pt.Prob(i))
			}
		}
	}
}

// TestPointLatticeAllocFree pins the degenerate-head fast path: minting a
// point lattice must not allocate (the grid ρ path mints one per
// empty-queue candidate).
func TestPointLatticeAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(100, func() {
		l := PointLattice(42.5, 0.25)
		if l.Mean() != 42.5 {
			t.Fatal("bad point lattice")
		}
	}); n != 0 {
		t.Fatalf("PointLattice allocates %v times per call", n)
	}
}

// FuzzGridRoundTrip asserts the sparse→lattice→sparse round trip preserves
// total mass exactly (up to summation association) and the mean within the
// quantization contract (each impulse moves at most step/2).
func FuzzGridRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(8), 0.1)
	f.Add(int64(99), uint8(1), 3.0)
	f.Add(int64(7), uint8(40), 0.003)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, step float64) {
		if n == 0 || n > 64 || !(step > 1e-6) || step > 1e6 || math.IsNaN(step) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		p := randPMF(rng, int(n), 50)
		l := ToLattice(p, step)
		back := l.PMF()
		if math.Abs(back.TotalMass()-p.TotalMass()) > 1e-12 {
			t.Fatalf("mass %v -> %v", p.TotalMass(), back.TotalMass())
		}
		if d := math.Abs(back.Mean() - p.Mean()); d > step/2+1e-9*(1+math.Abs(p.Mean())) {
			t.Fatalf("mean moved %v, budget %v (step %v)", d, step/2, step)
		}
		// Support stays sorted, strictly increasing, on-lattice.
		for i := 1; i < back.Len(); i++ {
			if back.Value(i) <= back.Value(i-1) {
				t.Fatalf("unsorted round-trip support at %d", i)
			}
		}
	})
}
