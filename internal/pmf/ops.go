package pmf

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// impulse pairs one support value with its mass, so the exact-path
// convolution sorts the raw product directly (one pdqsort over 16-byte
// elements) instead of permuting an index slice through two indirections
// per comparison.
type impulse struct{ v, p float64 }

// convScratch holds the reusable intermediates of one exact-path
// convolution: the raw impulse product and the sort-merged impulses.
// Results are always freshly allocated (PMFs are immutable and may be
// cached by callers), but the O(n·m) intermediates never escape, so
// pooling them removes the dominant allocation churn of the mapping hot
// path. The pool keeps convolution safe for concurrent use (the experiment
// harness runs trials in parallel).
type convScratch struct {
	raw           []impulse // raw product impulses
	mvals, mprobs []float64 // sort-merged impulses
}

var convPool = sync.Pool{New: func() any { return new(convScratch) }}

// growFloats returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Shift returns the PMF translated by dt: if X ~ p then X+dt ~ p.Shift(dt).
// This is the "shift the execution-time distribution by its start time"
// step of §IV-B.
func (p PMF) Shift(dt float64) PMF {
	if p.IsZero() {
		return p
	}
	vals := make([]float64, len(p.vals))
	for i, v := range p.vals {
		vals[i] = v + dt
	}
	probs := make([]float64, len(p.probs))
	copy(probs, p.probs)
	return PMF{vals: vals, probs: probs}
}

// ScaleTime returns the PMF of f·X for f > 0: the execution-time scaling a
// P-state multiplier applies (§VI). Panics if f <= 0.
func (p PMF) ScaleTime(f float64) PMF {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		panic(fmt.Sprintf("pmf: ScaleTime factor %v must be positive and finite", f))
	}
	if p.IsZero() {
		return p
	}
	vals := make([]float64, len(p.vals))
	for i, v := range p.vals {
		vals[i] = v * f
	}
	probs := make([]float64, len(p.probs))
	copy(probs, p.probs)
	return PMF{vals: vals, probs: probs}
}

// Convolve returns the distribution of X+Y for independent X ~ p, Y ~ q,
// compacted to at most DefaultMaxImpulses impulses. This is the sum of
// stochastic execution times down a core's queue (§IV-B).
func Convolve(p, q PMF) PMF {
	return ConvolveN(p, q, DefaultMaxImpulses)
}

// ConvolveN is Convolve with an explicit bound on the result's support size.
// maxImpulses <= 0 keeps the exact (uncompacted) result.
func ConvolveN(p, q PMF, maxImpulses int) PMF {
	if p.IsZero() {
		return q.clone()
	}
	if q.IsZero() {
		return p.clone()
	}
	// Degenerate operands are pure shifts.
	if p.Len() == 1 {
		return q.Shift(p.vals[0])
	}
	if q.Len() == 1 {
		return p.Shift(q.vals[0])
	}
	n := p.Len() * q.Len()
	opConvolutions.Add(1)
	// When the exact product support would be compacted anyway, accumulate
	// straight into the compaction buckets: same result layout as
	// Compact (equal-width buckets, mass-weighted centroids, mean preserved
	// exactly) without materializing and sorting n·m impulses. This is the
	// scheduler's hot path.
	if maxImpulses > 0 && n > 4*maxImpulses {
		opBucketed.Add(1)
		return convolveBucketed(p, q, maxImpulses)
	}
	s := convPool.Get().(*convScratch)
	defer convPool.Put(s)
	if cap(s.raw) < n {
		s.raw = make([]impulse, n)
	}
	raw := s.raw[:n]
	k := 0
	for i := range p.vals {
		pv, pp := p.vals[i], p.probs[i]
		for j := range q.vals {
			raw[k] = impulse{v: pv + q.vals[j], p: pp * q.probs[j]}
			k++
		}
	}
	return s.sortMergeCompact(raw, maxImpulses)
}

// convolveBucketed computes the convolution directly into maxN equal-width
// buckets over the exact support range, emitting one impulse per non-empty
// bucket at its mass-weighted centroid. The accumulators are deliberately
// fresh locals, not pooled scratch: the compiler can prove fresh
// allocations don't alias the operand slices, which keeps the inner
// accumulation loop free of redundant reloads (pooled buffers here cost
// ~60% in ns/op for a saving of two 512-byte allocations).
func convolveBucketed(p, q PMF, maxN int) PMF {
	lo := p.vals[0] + q.vals[0]
	hi := p.vals[len(p.vals)-1] + q.vals[len(q.vals)-1]
	span := hi - lo
	if span <= 0 {
		return Point(lo)
	}
	mass := make([]float64, maxN)
	moment := make([]float64, maxN)
	scale := float64(maxN) / span
	for i := range p.vals {
		pv, pp := p.vals[i], p.probs[i]
		for j := range q.vals {
			v := pv + q.vals[j]
			b := int((v - lo) * scale)
			if b >= maxN {
				b = maxN - 1
			}
			w := pp * q.probs[j]
			mass[b] += w
			moment[b] += w * v
		}
	}
	count := 0
	for b := range mass {
		if mass[b] > 0 {
			count++
		}
	}
	vals := make([]float64, 0, count)
	probs := make([]float64, 0, count)
	for b := range mass {
		if mass[b] <= 0 {
			continue
		}
		vals = append(vals, moment[b]/mass[b])
		probs = append(probs, mass[b])
	}
	return PMF{vals: vals, probs: probs}
}

// sortMergeCompact sorts the raw product by value, merges duplicate
// values, and — when the merged support exceeds maxImpulses — compacts,
// keeping every intermediate inside the scratch. The returned PMF is
// freshly allocated and exactly sized. Sorting the paired impulses
// directly (pdqsort via slices.SortFunc) replaces the former permutation
// sort, whose comparator paid two extra loads per comparison.
func (s *convScratch) sortMergeCompact(raw []impulse, maxImpulses int) PMF {
	n := len(raw)
	slices.SortFunc(raw, func(a, b impulse) int {
		if a.v < b.v {
			return -1
		}
		if a.v > b.v {
			return 1
		}
		return 0
	})
	mv := growFloats(s.mvals, n)[:0]
	mp := growFloats(s.mprobs, n)[:0]
	for i := range raw {
		if k := len(mv); k > 0 && mv[k-1] == raw[i].v {
			mp[k-1] += raw[i].p
			continue
		}
		mv = append(mv, raw[i].v)
		mp = append(mp, raw[i].p)
	}
	s.mvals, s.mprobs = mv, mp
	if maxImpulses > 0 && len(mv) > maxImpulses {
		return compactImpulses(mv, mp, maxImpulses)
	}
	outV := make([]float64, len(mv))
	outP := make([]float64, len(mp))
	copy(outV, mv)
	copy(outP, mp)
	return PMF{vals: outV, probs: outP}
}

// Compact returns a PMF with at most maxImpulses impulses that preserves
// total mass exactly and the mean exactly (each merged run is replaced by
// one impulse at its mass-weighted centroid). Runs of adjacent impulses are
// merged greedily with an equal-width value partition, which bounds the
// support distortion by the bucket width. Panics if maxImpulses < 1.
func (p PMF) Compact(maxImpulses int) PMF {
	if maxImpulses < 1 {
		panic("pmf: Compact requires maxImpulses >= 1")
	}
	if p.Len() <= maxImpulses {
		return p.clone()
	}
	return compactImpulses(p.vals, p.probs, maxImpulses)
}

// compactImpulses is the bucket-merge core shared by Compact and the
// convolution path: an equal-width value partition of [lo, hi] with one
// impulse per non-empty bucket at its mass-weighted centroid. vals must be
// sorted ascending and duplicate-free, with len(vals) > maxImpulses.
func compactImpulses(vals, probs []float64, maxImpulses int) PMF {
	lo, hi := vals[0], vals[len(vals)-1]
	span := hi - lo
	if span <= 0 {
		return Point(vals[0])
	}
	outV := make([]float64, 0, maxImpulses)
	outP := make([]float64, 0, maxImpulses)
	bucket := -1
	var mass, moment float64
	flush := func() {
		if mass <= 0 {
			return
		}
		outV = append(outV, moment/mass)
		outP = append(outP, mass)
	}
	for i := range vals {
		b := int(float64(maxImpulses) * (vals[i] - lo) / span)
		if b >= maxImpulses {
			b = maxImpulses - 1
		}
		if b != bucket {
			flush()
			bucket = b
			mass, moment = 0, 0
		}
		mass += probs[i]
		moment += probs[i] * vals[i]
	}
	flush()
	opCompactions.Add(1)
	opImpulsesCompacted.Add(int64(len(vals) - len(outV)))
	// Centroids of consecutive buckets are strictly increasing because the
	// buckets partition disjoint value ranges, so outV is already sorted
	// and duplicate-free.
	return PMF{vals: outV, probs: outP}
}

// SearchValue returns the index of the first support value >= t — the cut
// TruncateBelow(t) would apply: 0 keeps every impulse, Len() keeps none.
// The zero PMF yields 0. Because the truncation depends on t only through
// this index, two instants with the same cut produce bit-identical
// truncations — the invariant the incremental free-time cache keys on.
func (p PMF) SearchValue(t float64) int {
	return sort.SearchFloat64s(p.vals, t)
}

// TruncateBelow removes all impulses with value < t and renormalizes the
// remainder — the "remove the past impulses and re-normalize" step of
// §IV-B for a task already executing at the current time-step. It returns
// the renormalized PMF and the probability mass that was at or after t
// before renormalization. If no mass remains (the task "should" already
// have finished), it returns the degenerate PMF at t with kept == 0,
// modeling a task expected to complete imminently.
func (p PMF) TruncateBelow(t float64) (trunc PMF, kept float64) {
	if p.IsZero() {
		return p, 0
	}
	i := sort.SearchFloat64s(p.vals, t)
	if i == 0 {
		return p.clone(), 1
	}
	if i == len(p.vals) {
		return Point(t), 0
	}
	mass := 0.0
	for _, q := range p.probs[i:] {
		mass += q
	}
	if mass <= 0 {
		return Point(t), 0
	}
	vals := make([]float64, len(p.vals)-i)
	probs := make([]float64, len(p.probs)-i)
	copy(vals, p.vals[i:])
	inv := 1 / mass
	for j, q := range p.probs[i:] {
		probs[j] = q * inv
	}
	return PMF{vals: vals, probs: probs}, mass
}

// Mix returns the mixture w·p + (1-w)·q for w in [0,1]. Used by extension
// models (e.g. power consumption expressed as a distribution, §VIII).
func Mix(p, q PMF, w float64) (PMF, error) {
	if w < 0 || w > 1 || math.IsNaN(w) {
		return PMF{}, fmt.Errorf("%w: mixture weight %v", ErrBadProbability, w)
	}
	if p.IsZero() || q.IsZero() {
		return PMF{}, ErrEmpty
	}
	vals := make([]float64, 0, p.Len()+q.Len())
	probs := make([]float64, 0, p.Len()+q.Len())
	for i := range p.vals {
		vals = append(vals, p.vals[i])
		probs = append(probs, w*p.probs[i])
	}
	for i := range q.vals {
		vals = append(vals, q.vals[i])
		probs = append(probs, (1-w)*q.probs[i])
	}
	return New(vals, probs)
}

func (p PMF) clone() PMF {
	vals := make([]float64, len(p.vals))
	probs := make([]float64, len(p.probs))
	copy(vals, p.vals)
	copy(probs, p.probs)
	return PMF{vals: vals, probs: probs}
}
