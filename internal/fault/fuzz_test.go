package fault

import (
	"strings"
	"testing"
)

// FuzzFaultParseSpec feeds arbitrary strings to the -faults flag parser.
// The contract under test: ParseSpec never panics, and any spec it accepts
// can be Validated (which walks every field) without panicking — Validate
// may still reject it with an error, e.g. mtbf=-1 parses but does not
// validate, and that is fine.
func FuzzFaultParseSpec(f *testing.F) {
	f.Add("")
	f.Add("mtbf=5000,repair=300,recovery=requeue,retries=2")
	f.Add("mtbf=15000,dist=weibull,shape=1.5,repair=500,node-mtbf=90000")
	f.Add("recovery=drop,deadline-aware")
	f.Add("deadline-aware=true,backoff=60")
	f.Add("mtbf=1e309")
	f.Add("mtbf=NaN,repair=Inf")
	f.Add(",,,=,==,mtbf=")
	f.Add("retries=-1,backoff=-5")
	f.Add("dist=weibull")
	f.Add("mtbf=5000,,repair = 300 , deadline-aware = yes")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fault: ") {
				t.Fatalf("error without package prefix: %v (input %q)", err, s)
			}
			return
		}
		// Validate must not panic on anything ParseSpec accepted; its
		// verdict (nil or error) is not constrained here.
		_ = spec.Validate(8*4, 8)
		// A parsed spec must be idempotently re-parseable when it came
		// from the documented grammar keys only; at minimum, Availability
		// must stay finite and in [0, 1] for validated specs.
		if spec.Validate(8*4, 8) == nil {
			if a := spec.Availability(); !(a >= 0 && a <= 1) {
				t.Fatalf("validated spec has availability %v (input %q)", a, s)
			}
		}
	})
}
