package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/randx"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("mtbf=15000, dist=weibull, shape=1.5, repair=500, node-mtbf=90000, recovery=requeue, retries=4, backoff=100, deadline-aware")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Transient.Enabled || spec.Transient.MTBF != 15000 || spec.Transient.Dist != Weibull || spec.Transient.Shape != 1.5 {
		t.Fatalf("transient process wrong: %+v", spec.Transient)
	}
	if !spec.Permanent.Enabled || spec.Permanent.MTBF != 90000 || spec.Permanent.Dist != Exponential {
		t.Fatalf("permanent process wrong: %+v", spec.Permanent)
	}
	if spec.RepairTime != 500 {
		t.Fatalf("repair %v", spec.RepairTime)
	}
	r := spec.Recovery
	if r.Mode != Requeue || r.MaxRetries != 4 || r.Backoff != 100 || !r.DeadlineAware {
		t.Fatalf("recovery wrong: %+v", r)
	}
	if !spec.Enabled() {
		t.Fatal("parsed spec should be enabled")
	}
}

func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Enabled() {
		t.Fatal("empty spec must mean no faults")
	}
	// Requeue without explicit retries defaults to 2 attempts.
	spec, err = ParseSpec("mtbf=1000,repair=10,recovery=requeue")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Recovery.MaxRetries != 2 {
		t.Fatalf("default retries %d, want 2", spec.Recovery.MaxRetries)
	}
	// deadline-aware accepts an explicit bool.
	spec, err = ParseSpec("mtbf=1000,deadline-aware=false")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Recovery.DeadlineAware {
		t.Fatal("deadline-aware=false ignored")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"mtbf=abc",
		"dist=uniform",
		"recovery=panic",
		"retries=1.5",
		"deadline-aware=maybe",
		"frobnicate=1",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("%q: expected parse error", s)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{
		Transient:  Process{Enabled: true, MTBF: 100},
		Permanent:  Process{Enabled: true, Dist: Weibull, MTBF: 1000, Shape: 2},
		RepairTime: 10,
		Script:     []Scripted{{Time: 5, Kind: Transient, Core: 3}, {Time: 9, Kind: Permanent, Node: 1}},
		Recovery:   Recovery{Mode: Requeue, MaxRetries: 2, Backoff: 1},
	}
	if err := good.Validate(8, 4); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Transient: Process{Enabled: true, MTBF: 0}},
		{Transient: Process{Enabled: true, MTBF: math.NaN()}},
		{Transient: Process{Enabled: true, Dist: Weibull, MTBF: 1, Shape: 0}},
		{Transient: Process{Enabled: true, Dist: Dist(9), MTBF: 1}},
		{RepairTime: -1},
		{RepairTime: math.Inf(1)},
		{Script: []Scripted{{Time: -1, Kind: Transient}}},
		{Script: []Scripted{{Time: 1, Kind: Transient, Core: 8}}},
		{Script: []Scripted{{Time: 1, Kind: Permanent, Node: 4}}},
		{Script: []Scripted{{Time: 1, Kind: Kind(7)}}},
		{Script: []Scripted{{Time: 1, Kind: Transient, Repair: math.NaN()}}},
		{Recovery: Recovery{Mode: RecoveryMode(5)}},
		{Recovery: Recovery{MaxRetries: -1}},
		{Recovery: Recovery{Backoff: -2}},
	}
	for i, s := range bad {
		if err := s.Validate(8, 4); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestAvailability(t *testing.T) {
	s := Spec{}
	if got := s.Availability(); got != 1 {
		t.Fatalf("disabled spec availability %v, want 1", got)
	}
	s = Spec{Transient: Process{Enabled: true, MTBF: 900}, RepairTime: 100}
	if got := s.Availability(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("availability %v, want 0.9", got)
	}
}

func TestSampleMeansMatchMTBF(t *testing.T) {
	// Both distributions are parameterized so the sample mean is the MTBF;
	// check over many draws (law of large numbers, generous tolerance).
	const mtbf = 250.0
	for _, p := range []Process{
		{Enabled: true, Dist: Exponential, MTBF: mtbf},
		{Enabled: true, Dist: Weibull, MTBF: mtbf, Shape: 0.8},
		{Enabled: true, Dist: Weibull, MTBF: mtbf, Shape: 2.5},
	} {
		s := randx.NewStream(99).Child(p.Dist.String())
		sum := 0.0
		const n = 60000
		for i := 0; i < n; i++ {
			d := p.Sample(s)
			if d <= 0 {
				t.Fatalf("%v: non-positive inter-arrival %v", p, d)
			}
			sum += d
		}
		mean := sum / n
		if math.Abs(mean-mtbf)/mtbf > 0.03 {
			t.Errorf("%v shape=%v: sample mean %v far from MTBF %v", p.Dist, p.Shape, mean, mtbf)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	p := Process{Enabled: true, Dist: Weibull, MTBF: 100, Shape: 1.3}
	a, b := randx.NewStream(7).Child("f"), randx.NewStream(7).Child("f")
	for i := 0; i < 100; i++ {
		if x, y := p.Sample(a), p.Sample(b); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Exponential.String():     "exponential",
		Weibull.String():         "weibull",
		Dist(9).String():         "Dist(9)",
		Transient.String():       "transient",
		Permanent.String():       "permanent",
		Kind(9).String():         "Kind(9)",
		Drop.String():            "drop",
		Requeue.String():         "requeue",
		RecoveryMode(9).String(): "RecoveryMode(9)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer: got %q, want %q", got, want)
		}
	}
	if !strings.Contains(Dist(9).String(), "9") {
		t.Error("unknown dist should embed the value")
	}
}

// TestParseSpecTable exercises the parser's reporting contract: empty and
// whitespace-only specs are valid no-ops, duplicate keys are rejected, and
// every error names the offending token and its byte offset in the input.
func TestParseSpecTable(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		wants []string // substrings the error must contain; nil = must parse
	}{
		{"empty", "", nil},
		{"whitespace only", "   \t  ", nil},
		{"bare commas", " , ,, ", nil},
		{"single key", "mtbf=5000", nil},
		{"spaced fields", "  mtbf = 5000 , repair = 10  ", nil},
		{"duplicate key", "mtbf=5000,repair=10,mtbf=6000",
			[]string{"duplicate key", `"mtbf"`, `"mtbf=6000"`, "offset 20"}},
		{"duplicate spaced", "mtbf=1, mtbf=2",
			[]string{"duplicate key", `"mtbf=2"`, "offset 8"}},
		{"duplicate deadline-aware", "deadline-aware,deadline-aware=false",
			[]string{"duplicate key", `"deadline-aware"`, "offset 15"}},
		{"bad number", "mtbf=abc",
			[]string{`"abc" is not a number`, `"mtbf=abc"`, "offset 0"}},
		{"bad number offset", "repair=10,mtbf=abc",
			[]string{`"mtbf=abc"`, "offset 10"}},
		{"unknown key", "repair=10,frobnicate=1",
			[]string{"unknown key", `"frobnicate=1"`, "offset 10"}},
		{"bad dist", "dist=uniform",
			[]string{"unknown distribution", `"dist=uniform"`, "offset 0"}},
		{"bad recovery", "mtbf=1,recovery=panic",
			[]string{"unknown mode", `"recovery=panic"`, "offset 7"}},
		{"bad retries", "retries=1.5",
			[]string{"not an integer", `"retries=1.5"`}},
		{"bad bool", "deadline-aware=maybe",
			[]string{"not a bool", `"deadline-aware=maybe"`}},
		{"empty value", "mtbf=",
			[]string{`"" is not a number`, `"mtbf="`, "offset 0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.in)
			if tc.wants == nil {
				if err != nil {
					t.Fatalf("ParseSpec(%q): %v", tc.in, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("ParseSpec(%q): expected error", tc.in)
			}
			if !strings.HasPrefix(err.Error(), "fault: ") {
				t.Fatalf("error lacks package prefix: %v", err)
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("ParseSpec(%q) error %q missing %q", tc.in, err, want)
				}
			}
		})
	}
}

// TestParseSpecDuplicateAcrossAliases: distinct keys that touch the same
// field (dist vs shape etc.) are not duplicates; only literal key repeats
// are.
func TestParseSpecDuplicateAcrossAliases(t *testing.T) {
	if _, err := ParseSpec("dist=weibull,shape=1.5,mtbf=100"); err != nil {
		t.Fatalf("distinct keys rejected: %v", err)
	}
	if _, err := ParseSpec("dist=exp,dist=weibull"); err == nil {
		t.Fatal("repeated dist accepted")
	}
}
