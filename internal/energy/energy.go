// Package energy implements the paper's energy model (§III-C): per-core
// P-state transition lists ν(i,j,k), per-core energy η(i,j,k) (Eq. 1), and
// cluster energy ζ with power-supply-efficiency division (Eq. 2). It also
// provides a live Meter that integrates the cluster's piecewise-constant
// power draw as the simulation advances and pinpoints the exact instant the
// energy constraint ζ_max is exhausted.
package energy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Transition is one entry of a core's P-state transition list ν(i,j,k): at
// Time the core entered P-state To.
type Transition struct {
	Time float64
	To   cluster.PState
}

// CoreEnergy evaluates Eq. 1 for one core: the sum over transitions of the
// power of the entered P-state times the time until the next transition
// (or end for the last one). The transition list must be time-ordered and
// non-empty, and end must be at or after the last transition.
func CoreEnergy(node *cluster.Node, transitions []Transition, end float64) (float64, error) {
	if len(transitions) == 0 {
		return 0, errors.New("energy: empty transition list")
	}
	total := 0.0
	for n := 0; n < len(transitions); n++ {
		next := end
		if n+1 < len(transitions) {
			next = transitions[n+1].Time
		}
		dt := next - transitions[n].Time
		if dt < 0 {
			return 0, fmt.Errorf("energy: transitions out of order at %d (dt=%v)", n, dt)
		}
		if !transitions[n].To.Valid() {
			return 0, fmt.Errorf("energy: invalid P-state %d at transition %d", transitions[n].To, n)
		}
		total += node.Power[transitions[n].To] * dt
	}
	return total, nil
}

// ClusterEnergy evaluates Eq. 2: the sum over all cores of η(i,j,k)/ε(i).
// lists must hold one transition list per core, in the order of
// Cluster.Cores().
func ClusterEnergy(c *cluster.Cluster, lists [][]Transition, end float64) (float64, error) {
	cores := c.Cores()
	if len(lists) != len(cores) {
		return 0, fmt.Errorf("energy: %d transition lists for %d cores", len(lists), len(cores))
	}
	total := 0.0
	for idx, id := range cores {
		node := c.Node(id)
		e, err := CoreEnergy(node, lists[idx], end)
		if err != nil {
			return 0, fmt.Errorf("core %v: %w", id, err)
		}
		total += e / node.Efficiency
	}
	return total, nil
}

// ExpectedEnergy returns EEC (§V-A): the expected energy an assignment
// consumes at the wall, i.e. expected execution time × μ(i,π) / ε(i).
func ExpectedEnergy(node *cluster.Node, p cluster.PState, expectedExecTime float64) float64 {
	return expectedExecTime * node.Power[p] / node.Efficiency
}

// Meter integrates the cluster's power draw in simulation time. Every core
// is always in exactly one P-state (cores cannot be turned off, §III-A);
// the total draw is therefore piecewise constant between P-state changes,
// and the meter advances exactly.
type Meter struct {
	c      *cluster.Cluster
	eff    []float64
	state  []cluster.PState
	rate   float64 // current total draw at the wall, watts
	now    float64
	used   float64
	budget float64

	// override[i] >= 0 replaces the P-state table power for core i —
	// the hook for the §VIII extensions (stochastic per-execution power,
	// parked cores). Negative means "use the table".
	override []float64

	record bool
	lists  [][]Transition

	// Optional instrumentation (nil-safe): meter advances, real P-state
	// transitions, and a live consumed-energy gauge for exposition.
	advances    *metrics.Counter
	transitions *metrics.Counter
	consumed    *metrics.Gauge
}

// NewMeter creates a meter with every core initialized to the given idle
// P-state at time 0 (this is each core's first mandated transition,
// §III-C). budget is ζ_max; use math.Inf(1) for an unconstrained run.
// If record is true the meter keeps full transition lists so the exact
// Eq. 1/Eq. 2 computation can be replayed for verification.
func NewMeter(c *cluster.Cluster, initial cluster.PState, budget float64, record bool) (*Meter, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if !initial.Valid() {
		return nil, fmt.Errorf("energy: invalid initial P-state %d", initial)
	}
	if budget <= 0 {
		return nil, fmt.Errorf("energy: budget %v must be > 0", budget)
	}
	cores := c.Cores()
	m := &Meter{
		c:        c,
		eff:      make([]float64, len(cores)),
		state:    make([]cluster.PState, len(cores)),
		budget:   budget,
		record:   record,
		override: make([]float64, len(cores)),
	}
	for i := range m.override {
		m.override[i] = -1
	}
	if record {
		m.lists = make([][]Transition, len(cores))
	}
	for idx, id := range cores {
		node := c.Node(id)
		m.eff[idx] = node.Efficiency
		m.state[idx] = initial
		if record {
			m.lists[idx] = []Transition{{Time: 0, To: initial}}
		}
	}
	m.recompute()
	return m, nil
}

// recompute rebuilds the wall rate as a fresh sum over cores in index
// order. Keeping rate a pure function of (state, override) — instead of
// maintaining it incrementally — means a meter restored from a checkpoint
// integrates future advances bit-identically to the uninterrupted meter:
// there is no accumulated ulp drift to reproduce.
func (m *Meter) recompute() {
	rate := 0.0
	for idx := range m.state {
		rate += m.coreDraw(idx)
	}
	m.rate = rate
}

// MeterState is a serializable snapshot of the meter's accounting: the
// integration point (now, used) plus each core's P-state and power
// override. Restore rebuilds an identical meter — same rate bits, same
// future integration — on a fresh instance over the same cluster.
type MeterState struct {
	Now      float64          `json:"now"`
	Used     float64          `json:"used"`
	States   []cluster.PState `json:"states"`
	Override []float64        `json:"override"`
	// Budget is the meter's budget at capture time. Zero means "keep the
	// meter's constructed budget" — states written before budgets became
	// adjustable omit the field, and those meters were never adjusted.
	Budget float64 `json:"budget,omitempty"`
}

// State captures the meter for a checkpoint.
func (m *Meter) State() MeterState {
	st := MeterState{
		Now:      m.now,
		Used:     m.used,
		States:   append([]cluster.PState(nil), m.state...),
		Override: append([]float64(nil), m.override...),
	}
	if !math.IsInf(m.budget, 1) {
		// +Inf (unconstrained) is not JSON-encodable; leave the field zero
		// and let Restore keep the constructed budget.
		st.Budget = m.budget
	}
	return st
}

// Restore rewinds the meter to a captured state. The meter must have been
// constructed over the same cluster (same core count); recording stops, as
// transition lists cannot be reconstructed across a restore.
func (m *Meter) Restore(st MeterState) error {
	if len(st.States) != len(m.state) || len(st.Override) != len(m.override) {
		return fmt.Errorf("energy: restore state for %d/%d cores into meter with %d",
			len(st.States), len(st.Override), len(m.state))
	}
	budget := m.budget
	if st.Budget != 0 {
		// A captured budget overrides the constructed one: sub-budgets are
		// adjustable at runtime (SetBudget), so the checkpointed value — not
		// the boot-time carve — is the one Used must validate against.
		if st.Budget < 0 || math.IsNaN(st.Budget) || math.IsInf(st.Budget, 0) {
			return fmt.Errorf("energy: restore with invalid budget %v", st.Budget)
		}
		budget = st.Budget
	}
	if st.Now < 0 || math.IsNaN(st.Now) || st.Used < 0 || math.IsNaN(st.Used) || st.Used > budget {
		return fmt.Errorf("energy: restore with invalid now=%v used=%v (budget %v)", st.Now, st.Used, budget)
	}
	for i, p := range st.States {
		if !p.Valid() {
			return fmt.Errorf("energy: restore with invalid P-state %d for core %d", p, i)
		}
	}
	m.now = st.Now
	m.used = st.Used
	m.budget = budget
	copy(m.state, st.States)
	copy(m.override, st.Override)
	m.record = false
	m.lists = nil
	m.recompute()
	m.consumed.Set(m.used)
	return nil
}

// Instrument attaches counters for Advance calls and real P-state
// transitions, plus a gauge tracking consumed energy live. Any handle may
// be nil; instrumentation changes accounting not at all.
func (m *Meter) Instrument(advances, transitions *metrics.Counter, consumed *metrics.Gauge) {
	m.advances = advances
	m.transitions = transitions
	m.consumed = consumed
}

// Now returns the meter's current time.
func (m *Meter) Now() float64 { return m.now }

// Consumed returns the energy consumed at the wall so far.
func (m *Meter) Consumed() float64 { return m.used }

// Remaining returns the unconsumed budget (never negative).
func (m *Meter) Remaining() float64 { return math.Max(0, m.budget-m.used) }

// Budget returns ζ_max.
func (m *Meter) Budget() float64 { return m.budget }

// SetBudget replaces the meter's budget, effective immediately. The new
// budget must be positive, finite, and at least the energy already
// consumed — a budget controller may reclaim unspent headroom or grant
// more, but it can never un-consume energy. Exhaustion semantics are
// unchanged: a later Advance stops at the instant used reaches the new
// budget.
func (m *Meter) SetBudget(b float64) error {
	if !(b > 0) || math.IsInf(b, 0) {
		return fmt.Errorf("energy: budget %v must be positive and finite", b)
	}
	if b < m.used {
		return fmt.Errorf("energy: budget %v below consumed %v", b, m.used)
	}
	m.budget = b
	return nil
}

// Rate returns the current total cluster draw at the wall in watts.
func (m *Meter) Rate() float64 { return m.rate }

// PStateOf returns the current P-state of the core at the given flat index.
func (m *Meter) PStateOf(coreIdx int) cluster.PState { return m.state[coreIdx] }

// Overridden reports whether the core's draw is currently governed by a
// SetPower override rather than its P-state table power.
func (m *Meter) Overridden(coreIdx int) bool { return m.override[coreIdx] >= 0 }

// Advance moves the meter to time t, accumulating energy. If the budget is
// exhausted strictly before t, the meter stops at the exact exhaustion
// instant and returns (exhaustionTime, true); otherwise it advances fully
// and returns (t, false). Advancing backwards is an error expressed by
// panic, since it indicates a broken event loop rather than bad user input.
func (m *Meter) Advance(t float64) (float64, bool) {
	if t < m.now {
		panic(fmt.Sprintf("energy: Advance to %v before current time %v", t, m.now))
	}
	dt := t - m.now
	dE := m.rate * dt
	m.advances.Inc()
	if m.used+dE >= m.budget && m.rate > 0 {
		// The budget runs out somewhere in (now, t]. The division can drift
		// a few ulps outside that interval, which previously let the
		// comparison fall through and push used past budget; clamp the
		// exhaustion instant into [now, t] and always stop there.
		tEx := m.now + (m.budget-m.used)/m.rate
		tEx = math.Max(m.now, math.Min(tEx, t))
		m.now = tEx
		m.used = m.budget
		m.consumed.Set(m.used)
		return tEx, true
	}
	m.now = t
	m.used = math.Min(m.used+dE, m.budget)
	m.consumed.Set(m.used)
	return t, false
}

// coreDraw returns the core's current contribution to the wall rate.
func (m *Meter) coreDraw(coreIdx int) float64 {
	p := m.override[coreIdx]
	if p < 0 {
		p = m.c.Node(m.c.Cores()[coreIdx]).Power[m.state[coreIdx]]
	}
	return p / m.eff[coreIdx]
}

// SetPState changes the P-state of the core at the given flat index,
// effective at the meter's current time, and clears any power override.
// Callers must Advance first; the simulator only transitions idle cores,
// per §III-A, but the meter itself does not enforce idleness — it is pure
// accounting.
func (m *Meter) SetPState(coreIdx int, p cluster.PState) {
	if !p.Valid() {
		panic(fmt.Sprintf("energy: invalid P-state %d", p))
	}
	if m.state[coreIdx] == p && m.override[coreIdx] < 0 {
		return
	}
	m.state[coreIdx] = p
	m.override[coreIdx] = -1
	m.recompute()
	m.transitions.Inc()
	if m.record {
		m.lists[coreIdx] = append(m.lists[coreIdx], Transition{Time: m.now, To: p})
	}
}

// SetPower overrides the core's power draw with an explicit wattage,
// effective at the meter's current time, until the next SetPState or
// ClearPower. This is the accounting hook for the §VIII extensions:
// per-execution stochastic power and parked (power-gated) cores. Runs
// using overrides cannot be Verify'd against the Eq. 1 transition replay,
// which knows only P-state table powers.
func (m *Meter) SetPower(coreIdx int, watts float64) {
	if watts < 0 || math.IsNaN(watts) || math.IsInf(watts, 0) {
		panic(fmt.Sprintf("energy: invalid power override %v", watts))
	}
	m.override[coreIdx] = watts
	m.recompute()
	m.record = false // transition replay can no longer reproduce the run
}

// ClearPower removes a power override, returning the core to its P-state
// table power.
func (m *Meter) ClearPower(coreIdx int) {
	if m.override[coreIdx] < 0 {
		return
	}
	m.override[coreIdx] = -1
	m.recompute()
}

// Transitions returns the recorded per-core transition lists (nil unless
// the meter was created with record=true). The final mandated transition at
// workload end (§III-C) is the caller's responsibility; Verify adds it
// implicitly by evaluating Eq. 1 up to the end time.
func (m *Meter) Transitions() [][]Transition { return m.lists }

// Verify recomputes the consumed energy from the recorded transition lists
// via Eqs. 1–2 and returns the absolute difference from the meter's
// integral. It errors if the meter was not recording.
func (m *Meter) Verify() (float64, error) {
	if !m.record {
		return 0, errors.New("energy: meter was not recording transitions")
	}
	exact, err := ClusterEnergy(m.c, m.lists, m.now)
	if err != nil {
		return 0, err
	}
	return math.Abs(exact - m.used), nil
}
