package energy

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestBrownoutAutomaton(t *testing.T) {
	b, err := NewBrownout(DefaultBrownoutStages())
	if err != nil {
		t.Fatal(err)
	}
	if b.Stage() != 0 || b.Current() != nil {
		t.Fatal("fresh controller not nominal")
	}
	if b.NumStages() != 3 {
		t.Fatalf("NumStages %d", b.NumStages())
	}
	steps := []struct {
		frac    float64
		stage   int
		changed bool
	}{
		{0, 0, false},
		{0.5, 0, false},
		{0.899999, 0, false},
		{0.90, 1, true}, // threshold is inclusive
		{0.91, 1, false},
		{0.97, 2, true},
		{0.97, 2, false},
		{1.0, 3, true},
		{1.0, 3, false},
	}
	for i, s := range steps {
		stage, changed := b.Update(s.frac)
		if stage != s.stage || changed != s.changed {
			t.Fatalf("step %d (frac %v): stage %d changed %v, want %d %v",
				i, s.frac, stage, changed, s.stage, s.changed)
		}
		if b.Stage() != stage {
			t.Fatalf("step %d: Stage() %d != returned %d", i, b.Stage(), stage)
		}
	}
	if cur := b.Current(); cur == nil || !cur.ParkIdle {
		t.Fatalf("deepest stage measures wrong: %+v", b.Current())
	}
}

func TestBrownoutSkipsStraightToDeepStage(t *testing.T) {
	// A single large advance can cross several thresholds at once; every
	// intermediate stage is tripped in order within one Update.
	b, _ := NewBrownout(DefaultBrownoutStages())
	stage, changed := b.Update(0.99)
	if stage != 3 || !changed {
		t.Fatalf("jump update: stage %d changed %v", stage, changed)
	}
}

func TestValidateBrownoutStages(t *testing.T) {
	bad := [][]BrownoutStage{
		{{Frac: 0}},
		{{Frac: -0.5}},
		{{Frac: 1.5}},
		{{Frac: math.NaN()}},
		{{Frac: 0.9}, {Frac: 0.9}},                    // not strictly increasing
		{{Frac: 0.95}, {Frac: 0.9}},                   // decreasing
		{{Frac: 0.9, ZetaMul: -1}},                    // negative cap
		{{Frac: 0.9, ZetaMul: math.Inf(1)}},           // infinite cap
		{{Frac: 0.9, PStateFloor: cluster.PState(9)}}, // invalid floor
	}
	for i, stages := range bad {
		if err := ValidateBrownoutStages(stages); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, stages)
		}
	}
	if err := ValidateBrownoutStages(DefaultBrownoutStages()); err != nil {
		t.Fatalf("default schedule rejected: %v", err)
	}
	if _, err := NewBrownout(nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
}

func TestMeterAdvanceClampsAtBudget(t *testing.T) {
	// The exhaustion branch must clamp consumed energy to exactly the budget
	// even when float accumulation would land above or just below it — the
	// invariant the brownout fraction and the run results rely on.
	c := testCluster(t, 9)
	budget := c.AvgPower() * float64(c.TotalCores()) * 10.3333333333
	m, err := NewMeter(c, cluster.P0, budget, false)
	if err != nil {
		t.Fatal(err)
	}
	// Advance in many tiny uneven slices so m.used accumulates drift.
	step := 0.0101
	var exhausted bool
	var at float64
	for i := 1; !exhausted && i < 10000; i++ {
		at, exhausted = m.Advance(float64(i) * step)
		if m.Consumed() > budget {
			t.Fatalf("consumed %v exceeded budget %v before exhaustion", m.Consumed(), budget)
		}
	}
	if !exhausted {
		t.Fatal("meter never exhausted")
	}
	if m.Consumed() != budget {
		t.Fatalf("at exhaustion consumed %v, want exactly budget %v", m.Consumed(), budget)
	}
	if at > m.Now()+1e-12 || at <= 0 {
		t.Fatalf("exhaustion instant %v outside advance window (now %v)", at, m.Now())
	}
}

func TestMeterOverriddenAccessor(t *testing.T) {
	c := testCluster(t, 10)
	m, err := NewMeter(c, cluster.P4, math.Inf(1), false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Overridden(0) {
		t.Fatal("fresh meter reports override")
	}
	m.SetPower(0, 0)
	if !m.Overridden(0) || m.Overridden(1) {
		t.Fatal("override tracking wrong after SetPower")
	}
	m.ClearPower(0)
	if m.Overridden(0) {
		t.Fatal("override survives ClearPower")
	}
	m.SetPower(0, 1.5)
	m.SetPState(0, cluster.P0)
	if m.Overridden(0) {
		t.Fatal("override survives SetPState")
	}
}
