// Brownout: staged degradation as the energy budget drains, replacing the
// all-or-nothing halt at ζ_max with a controlled descent. The paper (§III-C)
// simply stops the cluster the instant ζ_max is exhausted; a brownout
// controller instead watches the consumed fraction of the budget and, at
// configured thresholds, progressively (1) tightens the admission filter's
// ζ_mul so fewer marginal tasks are admitted, (2) floors new dispatches at
// deep (slow, frugal) P-states, and (3) power-gates idle cores — so the
// final joules finish in-flight work instead of stranding it. The hard halt
// at 100% is unchanged.
package energy

import (
	"fmt"
	"math"

	"repro/internal/cluster"
)

// BrownoutStage is one degradation threshold. When consumed/budget reaches
// Frac the stage trips (stages trip monotonically; energy consumption never
// decreases) and its measures apply until a deeper stage takes over.
type BrownoutStage struct {
	// Frac is the consumed fraction of ζ_max in (0,1] at which the stage
	// trips.
	Frac float64
	// ZetaMul caps the energy filter's ζ_mul multiplier: the effective
	// multiplier becomes min(adaptive ζ_mul, ZetaMul). Zero means "no cap".
	ZetaMul float64
	// PStateFloor is the shallowest P-state new dispatches may use; P0 (the
	// zero value) leaves dispatch unrestricted. Deeper states are allowed —
	// the floor only rules out the fast, power-hungry end.
	PStateFloor cluster.PState
	// ParkIdle power-gates cores the moment they go idle (draw 0 instead of
	// the idle P-state's power).
	ParkIdle bool
	// ShedAdmission closes the admission gate entirely while the stage is
	// active: a serving front-end refuses new work (sheds arrivals) so the
	// remaining joules finish what is already in flight. The batch simulator
	// ignores this field — its arrivals are the experiment, not admission
	// requests — so existing schedules are unaffected.
	ShedAdmission bool
}

// DefaultBrownoutStages returns the three-stage schedule used by the
// ecsim/ectrace -brownout flag and the brownout-vs-hard-halt ablation:
// at 90% admit only clearly-affordable work and stay at or below P2, at 95%
// tighten further to P3, and at 98% admit almost nothing, dispatch only at
// P4, and power-gate idle cores.
func DefaultBrownoutStages() []BrownoutStage {
	return []BrownoutStage{
		{Frac: 0.90, ZetaMul: 0.8, PStateFloor: cluster.P2},
		{Frac: 0.95, ZetaMul: 0.6, PStateFloor: cluster.P3},
		{Frac: 0.98, ZetaMul: 0.4, PStateFloor: cluster.P4, ParkIdle: true},
	}
}

// DefaultServeBrownoutStages is the serving-mode schedule: identical to
// DefaultBrownoutStages except the deepest stage also sheds new admissions,
// so a long-lived allocation daemon spends its last joules completing
// accepted work instead of admitting tasks it can no longer finish.
func DefaultServeBrownoutStages() []BrownoutStage {
	stages := DefaultBrownoutStages()
	stages[len(stages)-1].ShedAdmission = true
	return stages
}

// ValidateBrownoutStages checks that the schedule is well-formed: fractions
// strictly increasing in (0,1], ζ_mul caps non-negative and finite, P-state
// floors valid.
func ValidateBrownoutStages(stages []BrownoutStage) error {
	prev := 0.0
	for i, st := range stages {
		if math.IsNaN(st.Frac) || st.Frac <= prev || st.Frac > 1 {
			return fmt.Errorf("energy: brownout stage %d: Frac %v not in (%v,1]", i, st.Frac, prev)
		}
		if st.ZetaMul < 0 || math.IsNaN(st.ZetaMul) || math.IsInf(st.ZetaMul, 0) {
			return fmt.Errorf("energy: brownout stage %d: invalid ZetaMul %v", i, st.ZetaMul)
		}
		if !st.PStateFloor.Valid() {
			return fmt.Errorf("energy: brownout stage %d: invalid PStateFloor %d", i, st.PStateFloor)
		}
		prev = st.Frac
	}
	return nil
}

// Brownout tracks which stage of a degradation schedule is active. It is a
// pure threshold automaton: feed it the consumed fraction after every meter
// advance and it reports transitions. Stages only deepen.
type Brownout struct {
	stages []BrownoutStage
	stage  int // number of stages tripped; 0 = nominal operation
}

// NewBrownout validates the schedule and returns a controller in the
// nominal (no stage tripped) state.
func NewBrownout(stages []BrownoutStage) (*Brownout, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("energy: brownout schedule is empty")
	}
	if err := ValidateBrownoutStages(stages); err != nil {
		return nil, err
	}
	return &Brownout{stages: stages}, nil
}

// Update advances the automaton given the consumed fraction of the budget.
// It returns the active stage number (0 = nominal, 1..n = stages tripped in
// schedule order) and whether this call deepened it.
func (b *Brownout) Update(frac float64) (stage int, changed bool) {
	for b.stage < len(b.stages) && frac >= b.stages[b.stage].Frac {
		b.stage++
		changed = true
	}
	return b.stage, changed
}

// Stage returns the active stage number (0 = nominal).
func (b *Brownout) Stage() int { return b.stage }

// NumStages returns the length of the schedule.
func (b *Brownout) NumStages() int { return len(b.stages) }

// Current returns the active stage's measures, or nil in nominal operation.
func (b *Brownout) Current() *BrownoutStage {
	if b.stage == 0 {
		return nil
	}
	return &b.stages[b.stage-1]
}
