package energy

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/randx"
)

func testCluster(t *testing.T, seed uint64) *cluster.Cluster {
	t.Helper()
	c, err := cluster.Generate(randx.NewStream(seed), cluster.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoreEnergyEq1(t *testing.T) {
	c := testCluster(t, 1)
	node := &c.Nodes[0]
	// P4 for 10 tu, P0 for 5 tu, back to P4 for 3 tu.
	trs := []Transition{
		{Time: 0, To: cluster.P4},
		{Time: 10, To: cluster.P0},
		{Time: 15, To: cluster.P4},
	}
	got, err := CoreEnergy(node, trs, 18)
	if err != nil {
		t.Fatal(err)
	}
	want := node.Power[cluster.P4]*10 + node.Power[cluster.P0]*5 + node.Power[cluster.P4]*3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("CoreEnergy %v, want %v", got, want)
	}
}

func TestCoreEnergyErrors(t *testing.T) {
	c := testCluster(t, 1)
	node := &c.Nodes[0]
	if _, err := CoreEnergy(node, nil, 10); err == nil {
		t.Fatal("expected error for empty list")
	}
	if _, err := CoreEnergy(node, []Transition{{Time: 5, To: cluster.P0}, {Time: 1, To: cluster.P4}}, 10); err == nil {
		t.Fatal("expected error for out-of-order transitions")
	}
	if _, err := CoreEnergy(node, []Transition{{Time: 0, To: cluster.PState(9)}}, 10); err == nil {
		t.Fatal("expected error for invalid P-state")
	}
}

func TestClusterEnergyEq2(t *testing.T) {
	c := testCluster(t, 2)
	cores := c.Cores()
	lists := make([][]Transition, len(cores))
	for i := range lists {
		lists[i] = []Transition{{Time: 0, To: cluster.P4}}
	}
	got, err := ClusterEnergy(c, lists, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, id := range cores {
		n := c.Node(id)
		want += n.Power[cluster.P4] * 100 / n.Efficiency
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("ClusterEnergy %v, want %v", got, want)
	}
	if _, err := ClusterEnergy(c, lists[:1], 100); err == nil {
		t.Fatal("expected error for wrong list count")
	}
}

func TestExpectedEnergy(t *testing.T) {
	c := testCluster(t, 3)
	n := &c.Nodes[0]
	got := ExpectedEnergy(n, cluster.P1, 200)
	want := 200 * n.Power[cluster.P1] / n.Efficiency
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EEC %v, want %v", got, want)
	}
}

func TestMeterBasicIntegration(t *testing.T) {
	c := testCluster(t, 4)
	m, err := NewMeter(c, cluster.P4, math.Inf(1), true)
	if err != nil {
		t.Fatal(err)
	}
	wantRate := 0.0
	for _, id := range c.Cores() {
		n := c.Node(id)
		wantRate += n.Power[cluster.P4] / n.Efficiency
	}
	if math.Abs(m.Rate()-wantRate) > 1e-9 {
		t.Fatalf("initial rate %v, want %v", m.Rate(), wantRate)
	}
	if at, ex := m.Advance(50); ex || at != 50 {
		t.Fatalf("unexpected exhaustion: at=%v ex=%v", at, ex)
	}
	if math.Abs(m.Consumed()-wantRate*50) > 1e-6 {
		t.Fatalf("consumed %v, want %v", m.Consumed(), wantRate*50)
	}
}

func TestMeterSetPStateChangesRate(t *testing.T) {
	c := testCluster(t, 5)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), true)
	r0 := m.Rate()
	m.SetPState(0, cluster.P0)
	if m.Rate() <= r0 {
		t.Fatal("raising a core to P0 should raise the total rate")
	}
	if m.PStateOf(0) != cluster.P0 {
		t.Fatal("P-state not updated")
	}
	// Setting the same state is a no-op and must not duplicate transitions.
	n := len(m.Transitions()[0])
	m.SetPState(0, cluster.P0)
	if len(m.Transitions()[0]) != n {
		t.Fatal("no-op SetPState recorded a transition")
	}
}

func TestMeterVerifyMatchesEq12(t *testing.T) {
	c := testCluster(t, 6)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), true)
	m.Advance(10)
	m.SetPState(0, cluster.P0)
	m.SetPState(3, cluster.P2)
	m.Advance(35)
	m.SetPState(0, cluster.P4)
	m.Advance(100)
	diff, err := m.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-6 {
		t.Fatalf("meter drifted %v from exact Eq. 1/2 computation", diff)
	}
}

func TestMeterExhaustion(t *testing.T) {
	c := testCluster(t, 7)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	rate := m.Rate()
	budget := rate * 40 // exactly 40 tu at the initial rate
	m2, _ := NewMeter(c, cluster.P4, budget, false)
	at, ex := m2.Advance(100)
	if !ex {
		t.Fatal("expected exhaustion")
	}
	if math.Abs(at-40) > 1e-9 {
		t.Fatalf("exhaustion at %v, want 40", at)
	}
	if m2.Remaining() != 0 {
		t.Fatalf("remaining %v after exhaustion", m2.Remaining())
	}
	if m2.Now() != at {
		t.Fatalf("meter time %v, want stop at exhaustion %v", m2.Now(), at)
	}
}

func TestMeterExactBoundaryNotEarly(t *testing.T) {
	c := testCluster(t, 8)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	rate := m.Rate()
	m2, _ := NewMeter(c, cluster.P4, rate*40, false)
	// Advancing to just before the boundary must not exhaust.
	if _, ex := m2.Advance(39.999999); ex {
		t.Fatal("exhausted before budget boundary")
	}
}

func TestMeterAdvanceBackwardsPanics(t *testing.T) {
	c := testCluster(t, 9)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	m.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards Advance")
		}
	}()
	m.Advance(5)
}

func TestNewMeterErrors(t *testing.T) {
	c := testCluster(t, 10)
	if _, err := NewMeter(&cluster.Cluster{}, cluster.P4, 1, false); err == nil {
		t.Fatal("expected error for invalid cluster")
	}
	if _, err := NewMeter(c, cluster.PState(7), 1, false); err == nil {
		t.Fatal("expected error for invalid P-state")
	}
	if _, err := NewMeter(c, cluster.P4, 0, false); err == nil {
		t.Fatal("expected error for non-positive budget")
	}
}

func TestMeterVerifyRequiresRecording(t *testing.T) {
	c := testCluster(t, 11)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	if _, err := m.Verify(); err == nil {
		t.Fatal("expected error verifying a non-recording meter")
	}
	if m.Transitions() != nil {
		t.Fatal("non-recording meter returned transition lists")
	}
}

func TestMeterPowerOverride(t *testing.T) {
	c := testCluster(t, 13)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	r0 := m.Rate()
	node := c.Node(c.Cores()[0])
	// Override core 0 to double its P4 power.
	m.SetPower(0, 2*node.Power[cluster.P4])
	wantDelta := node.Power[cluster.P4] / node.Efficiency
	if math.Abs(m.Rate()-(r0+wantDelta)) > 1e-9 {
		t.Fatalf("rate after override %v, want %v", m.Rate(), r0+wantDelta)
	}
	// Energy integrates at the overridden rate.
	m.Advance(10)
	want := (r0 + wantDelta) * 10
	if math.Abs(m.Consumed()-want) > 1e-6 {
		t.Fatalf("consumed %v, want %v", m.Consumed(), want)
	}
	// ClearPower restores the table rate.
	m.ClearPower(0)
	if math.Abs(m.Rate()-r0) > 1e-9 {
		t.Fatalf("rate after clear %v, want %v", m.Rate(), r0)
	}
	// Clearing again is a no-op.
	m.ClearPower(0)
	if math.Abs(m.Rate()-r0) > 1e-9 {
		t.Fatal("double clear changed rate")
	}
}

func TestMeterSetPStateClearsOverride(t *testing.T) {
	c := testCluster(t, 14)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	r0 := m.Rate()
	m.SetPower(0, 500)
	m.SetPState(0, cluster.P4) // same state, but must clear the override
	if math.Abs(m.Rate()-r0) > 1e-9 {
		t.Fatalf("SetPState did not clear override: %v vs %v", m.Rate(), r0)
	}
}

func TestMeterSetPowerDisablesVerify(t *testing.T) {
	c := testCluster(t, 15)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), true)
	m.SetPower(0, 10)
	if _, err := m.Verify(); err == nil {
		t.Fatal("Verify should refuse after a power override")
	}
}

func TestMeterSetPowerPanicsOnBadWatts(t *testing.T) {
	c := testCluster(t, 16)
	m, _ := NewMeter(c, cluster.P4, math.Inf(1), false)
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for watts %v", w)
				}
			}()
			m.SetPower(0, w)
		}()
	}
}

func TestMeterBudgetAccessor(t *testing.T) {
	c := testCluster(t, 12)
	m, _ := NewMeter(c, cluster.P4, 12345, false)
	if m.Budget() != 12345 {
		t.Fatal("Budget accessor wrong")
	}
}

func TestMeterStateRestoreBitIdentical(t *testing.T) {
	c := testCluster(t, 1)
	mk := func() *Meter {
		m, err := NewMeter(c, cluster.P4, 1e9, false)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Drive one meter through a mixed history, snapshot mid-way, and demand
	// that a restored meter integrates the identical suffix bit-for-bit.
	drive := func(m *Meter) {
		m.Advance(10)
		m.SetPState(0, cluster.P0)
		m.Advance(17.25)
		m.SetPower(1, 0)
		m.Advance(31.5)
	}
	orig := mk()
	drive(orig)
	st := orig.State()

	suffix := func(m *Meter) (float64, float64, float64) {
		m.Advance(40.125)
		m.ClearPower(1)
		m.SetPState(0, cluster.P2)
		m.Advance(55.75)
		return m.Now(), m.Consumed(), m.Rate()
	}
	wn, wu, wr := suffix(orig)

	rest := mk()
	if err := rest.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if rest.Now() != st.Now || rest.Consumed() != st.Used {
		t.Fatalf("restore point: now=%v used=%v, want %v/%v", rest.Now(), rest.Consumed(), st.Now, st.Used)
	}
	gn, gu, gr := suffix(rest)
	if gn != wn || gu != wu || gr != wr {
		t.Fatalf("restored suffix diverged: now %v vs %v, used %v vs %v, rate %v vs %v", gn, wn, gu, wu, gr, wr)
	}
}

func TestMeterRestoreRejectsBadState(t *testing.T) {
	c := testCluster(t, 1)
	m, err := NewMeter(c, cluster.P4, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	good := m.State()
	bad := good
	bad.States = good.States[:1]
	if err := m.Restore(bad); err == nil {
		t.Fatal("Restore accepted truncated state")
	}
	bad = good
	bad.Used = 101 // past the budget
	if err := m.Restore(bad); err == nil {
		t.Fatal("Restore accepted used > budget")
	}
	bad = good
	bad.States = append([]cluster.PState(nil), good.States...)
	bad.States[0] = cluster.PState(99)
	if err := m.Restore(bad); err == nil {
		t.Fatal("Restore accepted invalid P-state")
	}
}
