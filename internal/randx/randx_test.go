package randx

import (
	"math"
	"testing"
)

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("sample %d diverged: %v != %v", i, av, bv)
		}
	}
}

func TestNewStreamSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical samples", same)
	}
}

func TestChildDeterministicAndIndependent(t *testing.T) {
	root := NewStream(7)
	c1 := root.Child("cluster")
	c2 := NewStream(7).Child("cluster")
	for i := 0; i < 50; i++ {
		if a, b := c1.Float64(), c2.Float64(); a != b {
			t.Fatalf("same-label children diverged at %d", i)
		}
	}
	w := NewStream(7).Child("workload")
	k := NewStream(7).Child("cluster")
	diff := false
	for i := 0; i < 50; i++ {
		if w.Float64() != k.Float64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different-label children produced identical sequences")
	}
}

func TestChildDoesNotPerturbParent(t *testing.T) {
	a := NewStream(3)
	b := NewStream(3)
	_ = a.Child("x") // deriving a child must not consume parent state
	for i := 0; i < 20; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Child consumed parent stream state")
		}
	}
}

func TestChildNDistinctIndices(t *testing.T) {
	root := NewStream(11)
	s0 := root.ChildN("trial", 0)
	s1 := root.ChildN("trial", 1)
	if s0.Float64() == s1.Float64() && s0.Float64() == s1.Float64() {
		t.Fatal("ChildN with different indices produced identical streams")
	}
	r0 := NewStream(11).ChildN("trial", 0)
	v := NewStream(11).ChildN("trial", 0)
	for i := 0; i < 20; i++ {
		if r0.Float64() != v.Float64() {
			t.Fatal("ChildN not deterministic")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(5)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 3)
		if v < 2 || v >= 3 {
			t.Fatalf("Uniform(2,3) produced %v", v)
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	s := NewStream(9)
	const n = 200000
	rate := 0.125
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exponential(rate)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("exponential mean %v, want ~%v", mean, want)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	NewStream(1).Exponential(0)
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0},
		{1.0, 1.0},
		{4.0, 0.5},
		{16.0, 750.0 / 16.0},
	}
	for _, c := range cases {
		s := NewStream(uint64(c.shape*1000) + 17)
		const n = 200000
		sum, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := s.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("gamma(%v,%v) produced non-positive %v", c.shape, c.scale, v)
			}
			sum += v
			sq += v * v
		}
		mean := sum / n
		variance := sq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("gamma(%v,%v) mean %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.08 {
			t.Errorf("gamma(%v,%v) var %v, want ~%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaMeanCV(t *testing.T) {
	s := NewStream(21)
	const n = 200000
	mean, cv := 750.0, 0.25
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.GammaMeanCV(mean, cv)
		sum += v
		sq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sq/n - m*m)
	if math.Abs(m-mean)/mean > 0.02 {
		t.Fatalf("mean %v, want ~%v", m, mean)
	}
	if math.Abs(sd/m-cv)/cv > 0.05 {
		t.Fatalf("cv %v, want ~%v", sd/m, cv)
	}
}

func TestGammaPanics(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for Gamma(%v,%v)", c.shape, c.scale)
				}
			}()
			NewStream(1).Gamma(c.shape, c.scale)
		}()
	}
}

func TestNormalMoments(t *testing.T) {
	s := NewStream(33)
	const n = 100000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("normal sd %v, want ~2", sd)
	}
}

func TestPoissonArrivalsStructure(t *testing.T) {
	s := NewStream(77)
	phases := []RatePhase{{Rate: 0.125, Count: 200}, {Rate: 1.0 / 48, Count: 600}, {Rate: 0.125, Count: 200}}
	times, err := PoissonArrivals(s, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 1000 {
		t.Fatalf("got %d arrivals, want 1000", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("arrival times not strictly increasing at %d: %v then %v", i, times[i-1], times[i])
		}
	}
	// Mean gap within each phase should be close to 1/rate.
	gap := func(lo, hi int) float64 {
		prev := 0.0
		if lo > 0 {
			prev = times[lo-1]
		}
		return (times[hi-1] - prev) / float64(hi-lo)
	}
	if g := gap(0, 200); math.Abs(g-8) > 1.7 {
		t.Errorf("fast phase mean gap %v, want ~8", g)
	}
	if g := gap(200, 800); math.Abs(g-48) > 6 {
		t.Errorf("slow phase mean gap %v, want ~48", g)
	}
	if g := gap(800, 1000); math.Abs(g-8) > 1.7 {
		t.Errorf("tail fast phase mean gap %v, want ~8", g)
	}
}

func TestPoissonArrivalsErrors(t *testing.T) {
	s := NewStream(1)
	if _, err := PoissonArrivals(s, nil); err == nil {
		t.Fatal("expected error for empty phases")
	}
	if _, err := PoissonArrivals(s, []RatePhase{{Rate: 0, Count: 1}}); err == nil {
		t.Fatal("expected error for zero rate")
	}
	if _, err := PoissonArrivals(s, []RatePhase{{Rate: 1, Count: -1}}); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeibullMoments(t *testing.T) {
	// Weibull(shape k, scale λ) has mean λ·Γ(1+1/k); shape 1 must reduce to
	// Exponential(1/λ).
	cases := []struct{ shape, scale float64 }{
		{0.7, 50},
		{1.0, 200},
		{2.0, 10},
		{3.5, 1000},
	}
	for _, c := range cases {
		s := NewStream(uint64(c.shape*100) + 31)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := s.Weibull(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("non-positive weibull sample %v", v)
			}
			sum += v
		}
		mean := sum / n
		want := c.scale * math.Gamma(1+1/c.shape)
		if math.Abs(mean-want)/want > 0.03 {
			t.Fatalf("weibull(%v,%v) mean %v, want ~%v", c.shape, c.scale, mean, want)
		}
	}
}

func TestWeibullDeterministic(t *testing.T) {
	a, b := NewStream(44).Child("w"), NewStream(44).Child("w")
	for i := 0; i < 200; i++ {
		if x, y := a.Weibull(1.5, 30), b.Weibull(1.5, 30); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{
		{0, 1}, {-1, 1}, {1, 0}, {1, -2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for shape=%v scale=%v", c.shape, c.scale)
				}
			}()
			NewStream(1).Weibull(c.shape, c.scale)
		}()
	}
}

func TestStreamStateRoundTrip(t *testing.T) {
	s := NewStream(7).Child("quantiles")
	for i := 0; i < 37; i++ {
		s.Float64() // advance to an arbitrary position
	}
	st := s.State()
	var want []float64
	for i := 0; i < 50; i++ {
		want = append(want, s.Float64())
	}
	fresh := NewStream(7).Child("quantiles")
	if err := fresh.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i, w := range want {
		if g := fresh.Float64(); g != w {
			t.Fatalf("draw %d after restore: %v != %v", i, g, w)
		}
	}
}

func TestStreamSetStateRejectsGarbage(t *testing.T) {
	s := NewStream(1)
	if err := s.SetState([]byte("not a pcg state")); err == nil {
		t.Fatal("SetState accepted garbage")
	}
}
