// Package randx provides the deterministic random-number substrate used by
// every stochastic component of the simulator: seeded splittable streams,
// samplers for the distributions the paper's models need (uniform,
// exponential, gamma), and piecewise-rate Poisson arrival processes.
//
// All randomness in the repository flows through this package so that a
// simulation trial is a pure function of its seed. Streams are "splittable":
// a parent stream derives statistically independent child streams from
// string labels, which lets independent subsystems (cluster generation,
// workload generation, per-trial sampling) consume randomness without
// perturbing one another when the code evolves.
package randx

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// Stream is a deterministic pseudo-random stream. It wraps a PCG generator
// seeded from a root seed and a label path, and exposes the samplers used
// by the simulation models.
type Stream struct {
	rng *rand.Rand
	// src is the underlying PCG source, retained so the stream position can
	// be checkpointed and restored (State/SetState).
	src *rand.PCG
	// seed material retained so children can be derived reproducibly.
	hi, lo uint64
}

func newStream(hi, lo uint64) *Stream {
	src := rand.NewPCG(hi, lo)
	return &Stream{rng: rand.New(src), src: src, hi: hi, lo: lo}
}

// NewStream returns a root stream for the given seed. Two streams with the
// same seed produce identical sequences.
func NewStream(seed uint64) *Stream {
	hi := splitmix64(seed)
	lo := splitmix64(hi ^ 0x9e3779b97f4a7c15)
	return newStream(hi, lo)
}

// Child derives an independent stream identified by label. Deriving the same
// label from the same parent always yields the same stream, and distinct
// labels yield streams that are independent for all practical purposes.
func (s *Stream) Child(label string) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	d := h.Sum64()
	hi := splitmix64(s.hi ^ d)
	lo := splitmix64(s.lo ^ bitReverse64(d))
	return newStream(hi, lo)
}

// ChildN derives an independent stream identified by an integer index, for
// per-trial or per-entity streams.
func (s *Stream) ChildN(label string, n int) *Stream {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(n)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	d := h.Sum64()
	hi := splitmix64(s.hi ^ d)
	lo := splitmix64(s.lo ^ bitReverse64(d))
	return newStream(hi, lo)
}

// State serializes the stream's current position (the PCG internal state)
// so a checkpointed consumer can resume drawing the exact same sequence
// after SetState. The identity (hi, lo) is not included; restore a state
// only into a stream derived from the same seed and label path.
func (s *Stream) State() []byte {
	b, err := s.src.MarshalBinary()
	if err != nil {
		// PCG's MarshalBinary cannot fail; guard against a future change.
		panic("randx: PCG state marshal: " + err.Error())
	}
	return b
}

// SetState restores a position previously captured with State. The stream's
// subsequent draws continue exactly where the captured stream left off.
func (s *Stream) SetState(b []byte) error {
	return s.src.UnmarshalBinary(b)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func bitReverse64(x uint64) uint64 {
	x = x>>32 | x<<32
	x = (x&0xffff0000ffff0000)>>16 | (x&0x0000ffff0000ffff)<<16
	x = (x&0xff00ff00ff00ff00)>>8 | (x&0x00ff00ff00ff00ff)<<8
	x = (x&0xf0f0f0f0f0f0f0f0)>>4 | (x&0x0f0f0f0f0f0f0f0f)<<4
	x = (x&0xcccccccccccccccc)>>2 | (x&0x3333333333333333)<<2
	x = (x&0xaaaaaaaaaaaaaaaa)>>1 | (x&0x5555555555555555)<<1
	return x
}

// Float64 returns a uniform sample in [0,1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform sample in [lo,hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// IntN returns a uniform sample in [0,n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rng.IntN(n) }

// Perm returns a random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Exponential returns an exponentially distributed sample with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (s *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exponential requires rate > 0")
	}
	// Inverse CDF; 1-U avoids log(0).
	return -math.Log(1-s.rng.Float64()) / rate
}

// Weibull returns a Weibull-distributed sample with the given shape k and
// scale λ (mean = λ·Γ(1+1/k)), via the inverse CDF λ·(-ln(1-U))^(1/k).
// Shape < 1 gives a decreasing hazard (infant mortality), shape = 1 reduces
// to Exponential(1/λ), and shape > 1 gives wear-out failures. It panics if
// shape or scale is not positive.
func (s *Stream) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Weibull requires shape > 0 and scale > 0")
	}
	return scale * math.Pow(-math.Log(1-s.rng.Float64()), 1/shape)
}

// Normal returns a normally distributed sample with the given mean and
// standard deviation, using the polar Box–Muller method via rand/v2.
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Gamma returns a gamma-distributed sample with the given shape and scale
// (mean = shape*scale, variance = shape*scale^2), using the Marsaglia–Tsang
// method with the Ahrens boost for shape < 1. It panics if shape or scale is
// not positive.
func (s *Stream) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("randx: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1), then X*U^(1/shape) ~ Gamma(shape).
		u := s.rng.Float64()
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := s.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaMeanCV returns a gamma-distributed sample parameterized by its mean
// and coefficient of variation (stddev/mean), the parameterization used by
// the CVB heterogeneity method. It panics unless mean > 0 and cv > 0.
func (s *Stream) GammaMeanCV(mean, cv float64) float64 {
	if mean <= 0 || cv <= 0 {
		panic("randx: GammaMeanCV requires mean > 0 and cv > 0")
	}
	shape := 1 / (cv * cv)
	scale := mean * cv * cv
	return s.Gamma(shape, scale)
}
