package randx

import (
	"errors"
	"fmt"
)

// RatePhase is one segment of a piecewise-rate Poisson arrival process: the
// next Count arrivals are generated with exponential inter-arrival times of
// the given Rate (arrivals per time unit).
type RatePhase struct {
	// Rate is the Poisson arrival rate (tasks per time unit) for this phase.
	Rate float64
	// Count is the number of arrivals drawn in this phase.
	Count int
}

// Validate reports whether the phase is usable.
func (p RatePhase) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("randx: phase rate %v must be > 0", p.Rate)
	}
	if p.Count < 0 {
		return fmt.Errorf("randx: phase count %d must be >= 0", p.Count)
	}
	return nil
}

// ErrNoPhases is returned when an arrival schedule has no phases.
var ErrNoPhases = errors.New("randx: arrival schedule needs at least one phase")

// PoissonArrivals generates the absolute arrival times of a task stream that
// follows a piecewise-rate Poisson process: the first phases[0].Count
// arrivals use rate phases[0].Rate, the next phases[1].Count arrivals use
// phases[1].Rate, and so on. This is exactly the bursty arrival model of the
// paper (§VI): the arrival *rate* is fixed per phase while arrival *times*
// vary between trials. Times start at the first inter-arrival gap after 0.
func PoissonArrivals(s *Stream, phases []RatePhase) ([]float64, error) {
	if len(phases) == 0 {
		return nil, ErrNoPhases
	}
	total := 0
	for i, p := range phases {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("phase %d: %w", i, err)
		}
		total += p.Count
	}
	times := make([]float64, 0, total)
	t := 0.0
	for _, p := range phases {
		for i := 0; i < p.Count; i++ {
			t += s.Exponential(p.Rate)
			times = append(times, t)
		}
	}
	return times, nil
}
