#!/bin/sh
# Tiered verification:
#   tier 1 — build + tests (the ROADMAP gate)
#   tier 2 — go vet + race-enabled tests
# Usage: ./verify.sh [1|2]   (default: both tiers)
set -eu
cd "$(dirname "$0")"

tier="${1:-2}"
case "$tier" in
1 | 2) ;;
*)
    echo "usage: $0 [1|2]" >&2
    exit 2
    ;;
esac

echo "== tier 1: go build ./..."
go build ./...
echo "== tier 1: go test ./..."
go test ./...
# The cache-parity suite proves the incremental free-time engine is
# bit-identical to the naive recomputation; run it under the race detector
# so a cache shared across goroutines can never slip in unnoticed.
echo "== tier 1: go test -race (free-time cache parity)"
go test -race -run 'FreeTimeEngine|ExactRho' ./internal/robustness
# Static analysis and vulnerability scanning run when the tools are on
# PATH; the container image doesn't ship them and nothing may be
# installed here, so absence is a skip, not a failure.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== tier 1: staticcheck ./..."
    staticcheck ./...
else
    echo "== tier 1: staticcheck not installed — skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== tier 1: govulncheck ./..."
    govulncheck ./...
else
    echo "== tier 1: govulncheck not installed — skipping"
fi

if [ "$tier" -ge 2 ]; then
    echo "== tier 2: go vet ./..."
    go vet ./...
    echo "== tier 2: go test -race ./..."
    go test -race ./...
    # The fault/brownout paths assert bit-level determinism; run them twice
    # under the race detector so a flaky ordering can't slip through a
    # single lucky pass.
    echo "== tier 2: go test -race -count=2 (fault injection)"
    go test -race -count=2 ./internal/fault ./internal/sim ./internal/energy
    # The mutation property test again, with a 20x step budget: long
    # randomized enqueue/start/complete/requeue sequences against the
    # incremental free-time engine, bit-compared to naive recomputation.
    echo "== tier 2: go test (free-time property, 10k steps)"
    FREETIME_PROP_STEPS=10000 go test -run FreeTimeEngineMatchesNaive -count=1 ./internal/robustness
    # Resume equivalence: interrupted sweeps replayed from the journal must
    # be bit-identical to uninterrupted runs, on every pass.
    echo "== tier 2: go test -run Resume -count=2 (journal resume)"
    go test -run Resume -count=2 ./internal/experiment
    # Fuzz the external input surfaces (PMF JSON loader, -faults parser)
    # briefly; regressions found here land as crash corpus entries.
    echo "== tier 2: go fuzz (pmf FromJSON, 10s)"
    go test -fuzz=FuzzPMFFromJSON -fuzztime=10s ./internal/pmf
    echo "== tier 2: go fuzz (fault ParseSpec, 10s)"
    go test -fuzz=FuzzFaultParseSpec -fuzztime=10s ./internal/fault
    echo "== tier 2: go fuzz (server DecodeTask, 10s)"
    go test -fuzz=FuzzServerDecodeTask -fuzztime=10s ./internal/server
    echo "== tier 2: go fuzz (trace Decode, 10s)"
    go test -fuzz=FuzzTraceDecode -fuzztime=10s ./internal/trace
    # Flight-recorder gate: record one run, replay it from the trace alone,
    # and require the replayed file to be byte-identical to the record —
    # cmp, not a field comparison, so nothing can hide in encoding drift.
    echo "== tier 2: flight trace record/replay bit-identity"
    flighttmp="$(mktemp -d)"
    trap 'rm -rf "$flighttmp"' EXIT
    go build -o "$flighttmp" ./cmd/ecsim ./cmd/ecreplay
    "$flighttmp/ecsim" -heuristic LL -filters en+rob -trials 1 -window 200 \
        -trace-out "$flighttmp/flight.jsonl" >/dev/null
    "$flighttmp/ecreplay" -out "$flighttmp/replayed.jsonl" "$flighttmp/flight.jsonl" >/dev/null
    cmp "$flighttmp/flight.jsonl" "$flighttmp/replayed.jsonl"
    echo "   record and replay are byte-identical"
    # End-to-end soak: race-built ecserve under bursty 2x overload with
    # fault injection, then a SIGTERM drain that must orphan nothing.
    echo "== tier 2: soak (ecserve + ecload, race-instrumented)"
    ./soak.sh
fi

echo "verify: OK (tier $tier)"
