#!/bin/sh
# Tiered verification:
#   tier 1 — build + tests (the ROADMAP gate)
#   tier 2 — go vet + race-enabled tests
# Usage: ./verify.sh [1|2]   (default: both tiers)
set -eu
cd "$(dirname "$0")"

tier="${1:-2}"
case "$tier" in
1 | 2) ;;
*)
    echo "usage: $0 [1|2]" >&2
    exit 2
    ;;
esac

# wait_addr <logfile> <pid>: ecserve prints its bound address in the
# startup banner, so the address appearing in the log doubles as the
# readiness signal. Sets $addr; dies (with a log tail) if the server
# process exits first or the banner never shows.
wait_addr() {
    addr=""
    i=0
    while [ "$i" -lt 300 ]; do
        addr="$(sed -n 's#.*on http://\([^/]*\)/v1/tasks.*#\1#p' "$1")"
        [ -n "$addr" ] && return 0
        kill -0 "$2" 2>/dev/null || {
            echo "verify: ecserve died during startup:" >&2
            tail -50 "$1" >&2
            exit 1
        }
        i=$((i + 1))
        sleep 0.1
    done
    echo "verify: ecserve never reported its address" >&2
    tail -50 "$1" >&2
    exit 1
}

echo "== tier 1: go build ./..."
go build ./...
echo "== tier 1: go test ./..."
go test ./...
# The cache-parity suite proves the incremental free-time engine is
# bit-identical to the naive recomputation; run it under the race detector
# so a cache shared across goroutines can never slip in unnoticed.
echo "== tier 1: go test -race (free-time cache parity)"
go test -race -run 'FreeTimeEngine|ExactRho' ./internal/robustness
# Static analysis and vulnerability scanning run when the tools are on
# PATH; the container image doesn't ship them and nothing may be
# installed here, so absence is a skip, not a failure.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== tier 1: staticcheck ./..."
    staticcheck ./...
else
    echo "== tier 1: staticcheck not installed — skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== tier 1: govulncheck ./..."
    govulncheck ./...
else
    echo "== tier 1: govulncheck not installed — skipping"
fi

if [ "$tier" -ge 2 ]; then
    echo "== tier 2: go vet ./..."
    go vet ./...
    echo "== tier 2: go test -race ./..."
    go test -race ./...
    # The fault/brownout paths assert bit-level determinism; run them twice
    # under the race detector so a flaky ordering can't slip through a
    # single lucky pass.
    echo "== tier 2: go test -race -count=2 (fault injection)"
    go test -race -count=2 ./internal/fault ./internal/sim ./internal/energy
    # The mutation property test again, with a 20x step budget: long
    # randomized enqueue/start/complete/requeue sequences against the
    # incremental free-time engine, bit-compared to naive recomputation.
    echo "== tier 2: go test (free-time property, 10k steps)"
    FREETIME_PROP_STEPS=10000 go test -run FreeTimeEngineMatchesNaive -count=1 ./internal/robustness
    # Grid quantization contract, race-enabled with a raised trial budget:
    # random operand chains must keep the lattice CDF inside the exact
    # chain's q·step/2 bracket, and the cached grid engine must stay
    # bit-identical to naive grid recomputation under long mutation runs.
    echo "== tier 2: go test -race (grid-vs-exact parity, 2k trials)"
    GRID_PROP_STEPS=2000 go test -race -run GridConvolveMatchesExact -count=1 ./internal/pmf
    FREETIME_PROP_STEPS=2000 go test -race -run 'FreeTimeEngineGrid|GridRhoParity' -count=1 ./internal/robustness
    # Resume equivalence: interrupted sweeps replayed from the journal must
    # be bit-identical to uninterrupted runs, on every pass.
    echo "== tier 2: go test -run Resume -count=2 (journal resume)"
    go test -run Resume -count=2 ./internal/experiment
    # Fuzz the external input surfaces (PMF JSON loader, -faults parser)
    # briefly; regressions found here land as crash corpus entries.
    echo "== tier 2: go fuzz (pmf FromJSON, 10s)"
    go test -fuzz=FuzzPMFFromJSON -fuzztime=10s ./internal/pmf
    echo "== tier 2: go fuzz (fault ParseSpec, 10s)"
    go test -fuzz=FuzzFaultParseSpec -fuzztime=10s ./internal/fault
    echo "== tier 2: go fuzz (server DecodeTask, 10s)"
    go test -fuzz=FuzzServerDecodeTask -fuzztime=10s ./internal/server
    echo "== tier 2: go fuzz (trace Decode, 10s)"
    go test -fuzz=FuzzTraceDecode -fuzztime=10s ./internal/trace
    echo "== tier 2: go fuzz (workload TenantSpec, 10s)"
    go test -fuzz=FuzzTenantSpec -fuzztime=10s ./internal/workload
    # Flight-recorder gate: record one run, replay it from the trace alone,
    # and require the replayed file to be byte-identical to the record —
    # cmp, not a field comparison, so nothing can hide in encoding drift.
    echo "== tier 2: flight trace record/replay bit-identity"
    flighttmp="$(mktemp -d)"
    csrv=""
    cld=""
    trap 'kill $csrv $cld 2>/dev/null || true; rm -rf "$flighttmp"' EXIT
    go build -o "$flighttmp" ./cmd/ecsim ./cmd/ecreplay
    "$flighttmp/ecsim" -heuristic LL -filters en+rob -trials 1 -window 200 \
        -trace-out "$flighttmp/flight.jsonl" >/dev/null
    "$flighttmp/ecreplay" -out "$flighttmp/replayed.jsonl" "$flighttmp/flight.jsonl" >/dev/null
    cmp "$flighttmp/flight.jsonl" "$flighttmp/replayed.jsonl"
    echo "   record and replay are byte-identical"
    # Crash-recovery gate: SIGKILL a durable ecserve mid-burst, then recover
    # the orphaned WAL + checkpoint twice (-recover -drain-now) on separate
    # copies. Both runs must exit 0 (zero orphans, balanced accounting) and
    # their flight traces must be byte-identical — recovery is a function of
    # the durable state alone, with no wall-clock or ordering leakage. Only
    # the metrics-snapshot line is excluded from the comparison: it holds
    # wall-latency histograms, which are real time, not recovered state.
    echo "== tier 2: kill-9 crash recovery determinism"
    go build -o "$flighttmp" ./cmd/ecserve ./cmd/ecload
    chaos="$flighttmp/chaos"
    mkdir -p "$chaos/a" "$chaos/b"
    CHAOS_FLAGS='-scale 2000 -budget 3 -faults mtbf=2000,repair=300,recovery=requeue,retries=2,backoff=60'
    csrv=""
    "$flighttmp/ecserve" -addr 127.0.0.1:0 $CHAOS_FLAGS \
        -wal "$chaos/wal" -checkpoint-every 300ms >"$chaos/ecserve.log" 2>&1 &
    csrv=$!
    wait_addr "$chaos/ecserve.log" "$csrv"
    "$flighttmp/ecload" -addr "$addr" -n 1500 -mult 2 -seed 3 -q >"$chaos/ecload.log" 2>&1 &
    cld=$!
    i=0
    while :; do
        lines="$(wc -l <"$chaos/wal.1" 2>/dev/null || echo 0)"
        [ "$lines" -ge 200 ] && break
        i=$((i + 1))
        [ "$i" -ge 150 ] || kill -0 "$cld" 2>/dev/null || {
            echo "chaos: burst ended before the kill threshold" >&2
            exit 1
        }
        [ "$i" -ge 150 ] && { echo "chaos: WAL never reached kill threshold" >&2; exit 1; }
        sleep 0.1
    done
    kill -9 "$csrv" 2>/dev/null
    wait "$csrv" 2>/dev/null || true
    csrv=""
    kill "$cld" 2>/dev/null || true
    wait "$cld" 2>/dev/null || true # transport errors after the kill are the point
    for side in a b; do
        cp "$chaos/wal.1" "$chaos/$side/wal.1"
        [ -e "$chaos/wal.ckpt" ] && cp "$chaos/wal.ckpt" "$chaos/$side/ckpt"
        "$flighttmp/ecserve" $CHAOS_FLAGS -wal "$chaos/$side/wal" -checkpoint "$chaos/$side/ckpt" \
            -recover -drain-now -flight "$chaos/$side/flight.jsonl" \
            -report "$chaos/$side/report.json" >"$chaos/$side/out.log" 2>&1 || {
            echo "chaos: recovery drain $side failed (orphans or imbalance):" >&2
            cat "$chaos/$side/out.log" >&2
            exit 1
        }
        grep -v '^{"m":' "$chaos/$side/flight.jsonl" >"$chaos/$side/flight.cmp"
    done
    cmp "$chaos/a/flight.cmp" "$chaos/b/flight.cmp"
    echo "   $lines WAL lines at SIGKILL; both recoveries drained clean, flight traces byte-identical"
    # shards=1 identity gate: the same orphaned WAL recovered through a
    # one-shard router must produce a flight trace byte-identical to the
    # single-engine recovery above — the router tier at n=1 is the identity,
    # not an approximation. Metric-snapshot lines are excluded as before
    # (the router adds router_* instruments to the shared registry).
    echo "== tier 2: shards=1 router identity (same WAL, byte-identical trace)"
    mkdir -p "$chaos/c"
    cp "$chaos/wal.1" "$chaos/c/wal.1"
    [ -e "$chaos/wal.ckpt" ] && cp "$chaos/wal.ckpt" "$chaos/c/ckpt"
    "$flighttmp/ecserve" $CHAOS_FLAGS -shards 1 -wal "$chaos/c/wal" -checkpoint "$chaos/c/ckpt" \
        -recover -drain-now -flight "$chaos/c/flight.jsonl" \
        -report "$chaos/c/report.json" >"$chaos/c/out.log" 2>&1 || {
        echo "chaos: one-shard recovery drain failed (orphans or imbalance):" >&2
        cat "$chaos/c/out.log" >&2
        exit 1
    }
    grep -v '^{"m":' "$chaos/c/flight.jsonl" >"$chaos/c/flight.cmp"
    cmp "$chaos/a/flight.cmp" "$chaos/c/flight.cmp"
    echo "   one-shard router recovery is byte-identical to the single engine"
    # Sharded recovery determinism gate: a three-shard durable server is
    # SIGKILLed mid-burst, then its per-shard WALs are recovered and drained
    # deterministically twice on separate copies. Every shard's flight trace
    # must be byte-identical across the two replays — multi-shard recovery
    # is a function of the durable state alone, with the cross-shard drain
    # interleaving fixed by the shared virtual axis.
    echo "== tier 2: 3-shard kill-9 recovery determinism"
    sharded="$flighttmp/sharded"
    mkdir -p "$sharded/a" "$sharded/b"
    SHARD_FLAGS='-scale 2000 -budget 3 -shards 3'
    "$flighttmp/ecserve" -addr 127.0.0.1:0 $SHARD_FLAGS \
        -wal "$sharded/wal" -checkpoint-every 300ms >"$sharded/ecserve.log" 2>&1 &
    csrv=$!
    wait_addr "$sharded/ecserve.log" "$csrv"
    "$flighttmp/ecload" -addr "$addr" -n 1500 -mult 2 -seed 5 -q >"$sharded/ecload.log" 2>&1 &
    cld=$!
    i=0
    while :; do
        lines="$(cat "$sharded"/wal.s*.1 2>/dev/null | wc -l || echo 0)"
        [ "$lines" -ge 200 ] && break
        i=$((i + 1))
        [ "$i" -ge 150 ] || kill -0 "$cld" 2>/dev/null || {
            echo "sharded: burst ended before the kill threshold" >&2
            exit 1
        }
        [ "$i" -ge 150 ] && { echo "sharded: WALs never reached kill threshold" >&2; exit 1; }
        sleep 0.1
    done
    kill -9 "$csrv" 2>/dev/null
    wait "$csrv" 2>/dev/null || true
    csrv=""
    kill "$cld" 2>/dev/null || true
    wait "$cld" 2>/dev/null || true
    for side in a b; do
        for s in 0 1 2; do
            cp "$sharded/wal.s$s.1" "$sharded/$side/wal.s$s.1"
            [ -e "$sharded/wal.ckpt.s$s" ] && cp "$sharded/wal.ckpt.s$s" "$sharded/$side/ckpt.s$s" || true
        done
        "$flighttmp/ecserve" $SHARD_FLAGS -wal "$sharded/$side/wal" -checkpoint "$sharded/$side/ckpt" \
            -recover -drain-now -flight "$sharded/$side/flight.jsonl" \
            -report "$sharded/$side/report.json" >"$sharded/$side/out.log" 2>&1 || {
            echo "sharded: recovery drain $side failed (orphans or imbalance):" >&2
            cat "$sharded/$side/out.log" >&2
            exit 1
        }
    done
    for s in 0 1 2; do
        grep -v '^{"m":' "$sharded/a/flight.jsonl.s$s" >"$sharded/a/flight.s$s.cmp"
        grep -v '^{"m":' "$sharded/b/flight.jsonl.s$s" >"$sharded/b/flight.s$s.cmp"
        cmp "$sharded/a/flight.s$s.cmp" "$sharded/b/flight.s$s.cmp"
    done
    echo "   $lines WAL lines at SIGKILL; 3-shard recovery replayed twice, all per-shard traces byte-identical"
    # End-to-end soak: race-built ecserve under bursty 2x overload with
    # fault injection, then a SIGTERM drain that must orphan nothing,
    # followed by the kill-9 chaos stage (SIGKILL mid-burst, -recover,
    # monotone energy across the crash).
    echo "== tier 2: soak (ecserve + ecload, race-instrumented)"
    ./soak.sh
fi

echo "verify: OK (tier $tier)"
