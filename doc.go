// Package repro is a from-scratch Go reproduction of "Energy-Constrained
// Dynamic Resource Allocation in a Heterogeneous Computing Environment"
// (Young et al., ICPP 2011).
//
// The paper studies immediate-mode allocation of dynamically arriving,
// stochastically-sized tasks with individual hard deadlines onto a
// heterogeneous DVFS-capable cluster operating under a single system-wide
// energy constraint. This module rebuilds the complete system the paper
// evaluates: the probability-mass-function engine behind its robustness
// model (§IV), the CVB heterogeneity generator, the cluster and ACPI
// P-state power model (§III, §VI), the energy accounting of Eqs. 1–2, the
// four heuristics and two filter mechanisms of §V, a discrete-event
// simulator, and an experiment harness that regenerates Figures 2–6 and
// the §VII summary statistics.
//
// Entry points:
//
//   - internal/core — the high-level facade (build a system, run
//     experiments, regenerate figures);
//   - cmd/ecsim, cmd/ecfig, cmd/ecgen — command-line tools;
//   - examples/ — runnable walkthroughs of the public API;
//   - bench_test.go — one benchmark per paper figure/table plus
//     micro-benchmarks of the hot paths.
//
// See DESIGN.md for the system inventory and modeling decisions, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
