#!/bin/sh
# Run the figure/table and hot-path benchmarks with allocation reporting
# and write the parsed results as BENCH_<date>.json (plus the raw text next
# to it). Narrow the set with a pattern argument:
#   ./bench.sh              # everything
#   ./bench.sh 'Fig[0-9]+'  # figure benches only
#
# Profiling: BENCH_PROFILE=1 captures CPU and heap profiles next to the
# baseline (<stem>.<pkg>.cpu.pprof / .mem.pprof). go test refuses profile
# flags with multiple packages, so profiling runs each package separately;
# timings land in the same raw file either way.
#
# Regression gate: BENCH_GATE is a regex naming benchmarks that must not
# regress; any gated benchmark whose ns/op grows more than BENCH_THRESHOLD
# percent (default 10) over the most recent committed baseline fails the
# run loudly with exit 1:
#   BENCH_GATE='Trial/LL_en_rob$|ServeAdmit' BENCH_THRESHOLD=15 ./bench.sh
set -eu
cd "$(dirname "$0")"

pattern="${1:-.}"
gate="${BENCH_GATE:-}"
threshold="${BENCH_THRESHOLD:-10}"
case "$threshold" in
'' | *[!0-9.]*)
    echo "bench: BENCH_THRESHOLD must be a number (percent), got '$threshold'" >&2
    exit 2
    ;;
esac
date="$(date +%Y-%m-%d)"
# Never clobber an earlier run from the same day: suffix _1, _2, ... until
# the name is free. The suffixed runs stay in chronological order for the
# baseline pick below.
stem="BENCH_${date}"
if [ -e "${stem}.json" ] || [ -e "${stem}.txt" ]; then
    n=1
    for f in "BENCH_${date}"_*.json "BENCH_${date}"_*.txt; do
        [ -e "$f" ] || continue
        s="${f##*_}"
        s="${s%.*}"
        case "$s" in '' | *[!0-9]*) continue ;; esac
        [ "$s" -ge "$n" ] && n=$((s + 1))
    done
    stem="BENCH_${date}_${n}"
fi
raw="${stem}.txt"
out="${stem}.json"

# The root package holds the figure/table and hot-path benches;
# internal/server adds the durability ones (WAL append/commit, recovery).
if [ -n "${BENCH_PROFILE:-}" ]; then
    : > "$raw"
    for pkg in . ./internal/server; do
        tag="$(basename "$(cd "$pkg" && pwd)")"
        [ "$pkg" = "." ] && tag="root"
        go test -run '^$' -bench "$pattern" -benchmem \
            -cpuprofile "${stem}.${tag}.cpu.pprof" \
            -memprofile "${stem}.${tag}.mem.pprof" \
            "$pkg" | tee -a "$raw"
        # go test leaves the compiled test binary behind when profiling;
        # pprof reads Go CPU/heap profiles without it, so drop it.
        rm -f "$(basename "$(cd "$pkg" && pwd)").test" repro.test
    done
    echo "profiles: ${stem}.*.{cpu,mem}.pprof (inspect with 'go tool pprof')"
else
    go test -run '^$' -bench "$pattern" -benchmem . ./internal/server | tee "$raw"
fi

# Parse "BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op  [W unit]..."
# into a JSON array; custom metrics (e.g. med_missed) ride along.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    if (!first) print ","
    printf "%s", line
    first = 0
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

# Compare against the most recent prior baseline, if any. Sort by date
# field then NUMERIC same-day suffix: plain lexicographic order would put
# BENCH_<date>_10 before BENCH_<date>_2 and pick the wrong "latest".
prev=""
for f in $(printf '%s\n' BENCH_*.json | sed 's/\.json$//' | sort -t_ -k2,2 -k3,3n | sed 's/$/.json/'); do
    [ -e "$f" ] || continue
    [ "$f" = "$out" ] && continue
    prev="$f"
done
if [ -n "$prev" ]; then
    echo
    echo "delta vs $prev:"
    awk -v prevfile="$prev" -v gate="$gate" -v thresh="$threshold" '
    function grab(line, key,   m) {
        if (match(line, "\"" key "\": [0-9.eE+-]+")) {
            m = substr(line, RSTART, RLENGTH)
            sub(/^.*: /, "", m)
            return m
        }
        return ""
    }
    match($0, /"name": "[^"]+"/) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        ns = grab($0, "ns_per_op")
        al = grab($0, "allocs_per_op")
        if (FILENAME == prevfile) { pns[name] = ns; pal[name] = al; next }
        if (gate != "" && name ~ gate) gated[name] = 1
        if (!(name in pns)) next
        dns = "n/a"; dal = "n/a"; pct = 0
        if (ns != "" && pns[name] + 0 > 0) {
            pct = 100 * (ns - pns[name]) / pns[name]
            dns = sprintf("%+.1f%%", pct)
        }
        if (al != "" && pal[name] != "")
            dal = sprintf("%+d", al - pal[name])
        printf "  %-44s %14s ns/op (%s)  %8s allocs/op (%s)\n", name, ns, dns, al, dal
        if ((name in gated) && pct > thresh + 0) {
            nbad++
            bad[nbad] = sprintf("%s: %s -> %s ns/op (%+.1f%% > %s%% threshold)",
                                name, pns[name], ns, pct, thresh)
        }
        delete gated[name]
    }
    END {
        # Gated benchmarks with no baseline entry cannot be compared; say so
        # rather than silently passing a gate that never fired.
        for (name in gated)
            printf "  warning: gated benchmark %s missing from baseline — not compared\n", name
        if (nbad) {
            printf "\nBENCH GATE FAILED (%d regression(s) vs %s):\n", nbad, prevfile
            for (i = 1; i <= nbad; i++) printf "  !! %s\n", bad[i]
            exit 1
        }
    }
    ' "$prev" "$out" || {
        echo "bench: gated regression detected — see the report above" >&2
        exit 1
    }
elif [ -n "$gate" ]; then
    echo "bench: BENCH_GATE set but no prior baseline to compare against" >&2
    exit 1
fi
