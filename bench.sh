#!/bin/sh
# Run the figure/table and hot-path benchmarks with allocation reporting
# and write the parsed results as BENCH_<date>.json (plus the raw text next
# to it). Narrow the set with a pattern argument:
#   ./bench.sh              # everything
#   ./bench.sh 'Fig[0-9]+'  # figure benches only
set -eu
cd "$(dirname "$0")"

pattern="${1:-.}"
date="$(date +%Y-%m-%d)"
raw="BENCH_${date}.txt"
out="BENCH_${date}.json"

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

# Parse "BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op  [W unit]..."
# into a JSON array; custom metrics (e.g. med_missed) ride along.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/\//, "_per_", unit)
        line = line sprintf(", \"%s\": %s", unit, $i)
    }
    line = line "}"
    if (!first) print ","
    printf "%s", line
    first = 0
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
