package repro

// One benchmark per paper figure and table (reduced trial counts so the
// full suite stays tractable — scale up with cmd/ecfig for the real
// numbers), plus micro-benchmarks of the simulator's hot paths. Every
// figure bench reports the median missed deadlines it measured as a custom
// metric ("med_missed") so regressions in *result shape*, not just speed,
// are visible in bench output.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/pmf"
	"repro/internal/randx"
	"repro/internal/robustness"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchSpec is the reduced-scale experiment used by the figure benches:
// the paper's cluster and parameter structure with 3 trials of 300 tasks.
func benchSpec() experiment.Spec {
	s := experiment.PaperSpec()
	s.Trials = 3
	s.Workload.WindowSize = 300
	s.Workload.BurstLen = 60
	return s
}

var (
	benchEnvOnce sync.Once
	benchEnv     *experiment.Env
	benchEnvErr  error
)

func sharedEnv(b *testing.B) *experiment.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv, benchEnvErr = experiment.Build(benchSpec())
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// benchFigure runs one paper figure end-to-end per iteration.
func benchFigure(b *testing.B, n int) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		f, err := env.Figure(n)
		if err != nil {
			b.Fatal(err)
		}
		med = f.Rows[len(f.Rows)-1].Summary.Median
	}
	b.ReportMetric(med, "med_missed")
}

// BenchmarkFig2_SQ regenerates Figure 2 (SQ × four filter variants).
func BenchmarkFig2_SQ(b *testing.B) { benchFigure(b, 2) }

// BenchmarkFig3_MECT regenerates Figure 3 (MECT × four filter variants).
func BenchmarkFig3_MECT(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFig4_LL regenerates Figure 4 (LL × four filter variants).
func BenchmarkFig4_LL(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFig5_Random regenerates Figure 5 (Random × four variants).
func BenchmarkFig5_Random(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFig6_Best regenerates Figure 6 (best variation per heuristic).
func BenchmarkFig6_Best(b *testing.B) { benchFigure(b, 6) }

// BenchmarkTableSummary regenerates the §VII improvement table.
func BenchmarkTableSummary(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.SummaryTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationZetaMul sweeps fixed ζ_mul values against the adaptive
// schedule (design-choice ablation from §V-F).
func BenchmarkAblationZetaMul(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblateZetaMul(sched.ShortestQueue{}, []float64{0.8, 1.0, 1.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRhoThresh sweeps the robustness threshold ρ_thresh.
func BenchmarkAblationRhoThresh(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblateRhoThresh(sched.LightestLoad{}, []float64{0.25, 0.5, 0.75}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBudget sweeps the energy budget scale.
func BenchmarkAblationBudget(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblateBudget(sched.LightestLoad{}, []float64{0.75, 1.0, 1.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationArrivals runs the §VIII arrival-pattern study.
func BenchmarkAblationArrivals(b *testing.B) {
	spec := benchSpec()
	spec.Trials = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblateArrivals(spec, sched.ShortestQueue{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPriority runs the §VIII priority extension study.
func BenchmarkAblationPriority(b *testing.B) {
	env := sharedEnv(b)
	classes := []workload.PriorityClass{{Weight: 4, Fraction: 0.25}, {Weight: 1, Fraction: 0.75}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.PriorityStudy(classes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLLTieBreak quantifies the design decision documented in
// sched.LightestLoad: the paper-faithful first-candidate tie-break versus
// the min-EEC repair (GreenLL), which finishes far more of the window.
func BenchmarkAblationLLTieBreak(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	var paper, green float64
	for i := 0; i < b.N; i++ {
		p, err := env.RunVariant(sched.LightestLoad{}, sched.NoFilter)
		if err != nil {
			b.Fatal(err)
		}
		g, err := env.RunVariant(sched.GreenLightestLoad{}, sched.NoFilter)
		if err != nil {
			b.Fatal(err)
		}
		paper, green = p.Summary.Median, g.Summary.Median
	}
	b.ReportMetric(paper, "LL_med_missed")
	b.ReportMetric(green, "GreenLL_med_missed")
}

// BenchmarkAblationParking runs the §VIII power-gating study.
func BenchmarkAblationParking(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.ParkingStudy(sched.ShortestQueue{}, []float64{0.25, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPowerNoise runs the §VIII stochastic-power study.
func BenchmarkAblationPowerNoise(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.PowerNoiseStudy(sched.ShortestQueue{}, []float64{0.25}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCancellation runs the §VIII cancel/reschedule study.
func BenchmarkAblationCancellation(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.CancellationStudy(sched.ShortestQueue{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func microModel(b *testing.B) *workload.Model {
	b.Helper()
	s := randx.NewStream(42)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 20
	p.WindowSize = 200
	p.BurstLen = 40
	p.PMFSamples = 1000
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// mkBenchPMF builds an n-impulse pmf with impulses spaced scale apart.
func mkBenchPMF(n int, scale float64) pmf.PMF {
	vals := make([]float64, n)
	probs := make([]float64, n)
	for i := range vals {
		vals[i] = scale * float64(i+1)
		probs[i] = float64(1 + i%7)
	}
	return pmf.MustNew(vals, probs)
}

// BenchmarkConvolve measures the sparse pmf convolution at
// scheduler-typical operand sizes (a 64-impulse free-time distribution × a
// 24-impulse execution pmf). The sort-merge-compact stage sorts paired
// impulses with slices.SortFunc (one pdqsort over 16-byte elements instead
// of an index permutation with two indirections per comparison), worth
// ~1-2% at this shape and two fewer scratch slices in the pool.
func BenchmarkConvolve(b *testing.B) {
	free := mkBenchPMF(64, 13.7)
	exec := mkBenchPMF(24, 31.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pmf.Convolve(free, exec)
	}
}

// BenchmarkGridConvolve measures the fixed-grid kernels that replace the
// sparse pipeline on the scheduler's hot path.
//
//   - lattice: Grid⊛Lattice axpy fold at tail-extension shape (dense
//     accumulator × 24-impulse operand) — the OnEnqueue extend cost.
//   - dispatch/sizeN: dense Grid⊛Grid products at increasing support;
//     Convolve picks direct or FFT per the crossover rule, and the
//     fft_frac metric reports which side of the boundary each size landed
//     on — re-run after hardware changes to recalibrate fftCostFactor.
func BenchmarkGridConvolve(b *testing.B) {
	const step = 13.7
	exec := pmf.ToLattice(mkBenchPMF(24, step), step)
	b.Run("lattice", func(b *testing.B) {
		w := pmf.IdentityGrid(step)
		for k := 0; k < 3; k++ {
			w = w.ConvolveLattice(exec)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = w.ConvolveLattice(exec)
		}
	})
	for _, n := range []int{64, 256, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("dispatch/size%d", n), func(b *testing.B) {
			ga := pmf.ToGrid(mkBenchPMF(n, step), step)
			gb := pmf.ToGrid(mkBenchPMF(n/2, step), step)
			b.ReportAllocs()
			before := pmf.ReadOpCounts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ga.Convolve(gb)
			}
			b.StopTimer()
			d := pmf.ReadOpCounts().Sub(before)
			b.ReportMetric(float64(d.FFTConvolutions)/float64(d.GridConvolutions), "fft_frac")
		})
	}
}

// BenchmarkTripleConvCDF measures one grid-mode ρ evaluation: the
// prefix-sum double loop over head × candidate impulses against the cached
// waiting-tail grid, with nothing materialized. This is the kernel behind
// every admission decision in grid mode.
func BenchmarkTripleConvCDF(b *testing.B) {
	const step = 13.7
	h := pmf.ToLattice(mkBenchPMF(24, step), step)
	e := pmf.ToLattice(mkBenchPMF(24, step), step)
	w := pmf.IdentityGrid(step)
	for k := 0; k < 3; k++ {
		w = w.ConvolveLattice(h)
	}
	x := w.Mean() + h.Mean() + e.Mean()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pmf.TripleConvCDF(&h, &w, &e, x)
	}
}

// BenchmarkRho measures one ρ(i,j,k,π,t_l,z) evaluation: free-time of a
// 3-deep queue plus the candidate convolution and CDF.
func BenchmarkRho(b *testing.B) {
	m := microModel(b)
	calc := robustness.NewCalculator(m)
	q := robustness.CoreQueue{Node: 0, Tasks: []robustness.QueuedTask{
		{Type: 0, PState: cluster.P1, Deadline: 5000, Started: true, StartAt: 0},
		{Type: 1, PState: cluster.P2, Deadline: 6000},
		{Type: 2, PState: cluster.P0, Deadline: 7000},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		free := calc.FreeTime(q, 500)
		_ = calc.ProbOnTime(free, 3, 0, cluster.P1, 6500)
	}
}

// BenchmarkDecision measures one full immediate-mode mapping decision for
// the most expensive configuration (LL+en+rob: candidate enumeration, both
// filters, ρ for every surviving candidate).
func BenchmarkDecision(b *testing.B) {
	m := microModel(b)
	calc := robustness.NewCalculator(m)
	view := benchView{c: m.Cluster}
	mapper := &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()}
	task := workload.Task{ID: 0, Type: 3, Arrival: 100, Deadline: 100 + 2.5*m.TAvg(), U: 0.5, Priority: 1}
	rng := randx.NewStream(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &sched.Context{
			Now: 100, Task: task, Model: m, Calc: calc,
			EnergyLeft: m.DefaultEnergyBudget(), TasksLeft: 500, AvgQueueDepth: 0.9, Rand: rng,
		}
		cands := sched.BuildCandidates(ctx, view)
		_ = mapper.Map(ctx, cands)
	}
}

// benchView is an idle-cluster SystemView.
type benchView struct{ c *cluster.Cluster }

func (v benchView) NumCores() int               { return v.c.TotalCores() }
func (v benchView) CoreID(i int) cluster.CoreID { return v.c.Cores()[i] }
func (v benchView) Queue(i int) robustness.CoreQueue {
	return robustness.CoreQueue{Node: v.c.Cores()[i].Node}
}

// BenchmarkTrial measures one full simulated trial (200 tasks) for a cheap
// heuristic and for the convolution-heavy one.
func BenchmarkTrial(b *testing.B) {
	m := microModel(b)
	tr, err := workload.GenerateTrial(randx.NewStream(3), m)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		mapper *sched.Mapper
		sparse bool
	}{
		{"MECT_none", &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}}, false},
		{"LL_en_rob", &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()}, false},
		// The pre-grid sparse pipeline, kept runnable for the speedup ratio.
		{"LL_en_rob_sparse", &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()}, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			cfg := sim.Config{Model: m, Mapper: c.mapper, EnergyBudget: math.Inf(1), SparsePMF: c.sparse}
			b.ReportAllocs()
			before := pmf.ReadOpCounts()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, tr, randx.NewStream(9)); err != nil {
					b.Fatal(err)
				}
			}
			d := pmf.ReadOpCounts().Sub(before)
			b.ReportMetric(float64(d.Convolutions)/float64(b.N), "conv/trial")
			b.ReportMetric(float64(d.GridConvolutions)/float64(b.N), "gridconv/trial")
		})
	}
}

// BenchmarkModelBuild measures workload model construction (CVB + pmf
// table generation), the per-experiment fixed cost.
func BenchmarkModelBuild(b *testing.B) {
	s := randx.NewStream(42)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 20
	p.PMFSamples = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.BuildModel(s.Child("wl"), c, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialFaults measures the fault machinery's cost on the same
// trial as BenchmarkTrial. The "off" case runs with the zero-valued
// fault.Spec — the default every paper figure uses — and should be
// indistinguishable from BenchmarkTrial/MECT_none, demonstrating the
// disabled path adds no per-event work. "on" injects aggressive transient
// faults with requeue recovery plus the staged brownout, bounding the cost
// of full resilience mode.
func BenchmarkTrialFaults(b *testing.B) {
	m := microModel(b)
	tr, err := workload.GenerateTrial(randx.NewStream(3), m)
	if err != nil {
		b.Fatal(err)
	}
	newMapper := func() *sched.Mapper {
		return &sched.Mapper{Heuristic: sched.MinExpectedCompletionTime{}}
	}
	b.Run("off", func(b *testing.B) {
		cfg := sim.Config{Model: m, Mapper: newMapper(), EnergyBudget: math.Inf(1)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(cfg, tr, randx.NewStream(9)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		cfg := sim.Config{
			Model: m, Mapper: newMapper(),
			EnergyBudget: 0.8 * m.DefaultEnergyBudget(),
			Faults: fault.Spec{
				Transient:  fault.Process{Enabled: true, MTBF: 2 * m.TAvg()},
				RepairTime: 0.3 * m.TAvg(),
				Recovery:   fault.Recovery{Mode: fault.Requeue, MaxRetries: 2, Backoff: 0.05 * m.TAvg(), DeadlineAware: true},
			},
			Brownout: energy.DefaultBrownoutStages(),
		}
		b.ReportAllocs()
		var faults int
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(cfg, tr, randx.NewStream(9))
			if err != nil {
				b.Fatal(err)
			}
			faults = res.Faults
		}
		b.ReportMetric(float64(faults), "faults")
	})
}

// BenchmarkAblationMTBF runs the §VIII fault-rate study.
func BenchmarkAblationMTBF(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.MTBFStudy(sched.LightestLoad{}, []float64{8, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBrownout runs the §VIII degradation-policy study.
func BenchmarkAblationBrownout(b *testing.B) {
	env := sharedEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.BrownoutStudy(sched.LightestLoad{}, []float64{0.7, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFreeTimeCached measures the incremental free-time engine on its
// three paths: a hit returns the cached chain with zero convolutions, a
// miss rebuilds the full §IV-B chain after an invalidation, a rebuild
// re-derives it because the running head's truncation cut drifted, and
// extend measures the full invalidate→rebuild→enqueue-extend→hit cycle.
func BenchmarkFreeTimeCached(b *testing.B) {
	m := microModel(b)
	calc := robustness.NewCalculator(m)
	q := robustness.CoreQueue{Node: 0, Tasks: []robustness.QueuedTask{
		{Type: 0, PState: cluster.P1, Deadline: 5000, Started: true, StartAt: 0},
		{Type: 1, PState: cluster.P2, Deadline: 6000},
		{Type: 2, PState: cluster.P0, Deadline: 7000},
	}}
	now := 500.0
	b.Run("hit", func(b *testing.B) {
		eng := robustness.NewFreeTimeEngine(calc, 1)
		eng.FreeTime(0, q, now)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.FreeTime(0, q, now)
		}
	})
	b.Run("miss", func(b *testing.B) {
		eng := robustness.NewFreeTimeEngine(calc, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Invalidate(0)
			_ = eng.FreeTime(0, q, now)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		// Alternate between two instants with different truncation cuts in
		// the running head's support, so every query re-derives the chain.
		head := m.ExecPMF(0, 0, cluster.P1)
		nows := [2]float64{head.Value(head.Len() / 4), head.Value(head.Len() / 2)}
		eng := robustness.NewFreeTimeEngine(calc, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = eng.FreeTime(0, q, nows[i%2])
		}
	})
	b.Run("extend", func(b *testing.B) {
		q4 := robustness.CoreQueue{Node: 0, Tasks: append(append([]robustness.QueuedTask(nil), q.Tasks...),
			robustness.QueuedTask{Type: 3, PState: cluster.P1, Deadline: 8000})}
		eng := robustness.NewFreeTimeEngine(calc, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Invalidate(0)
			_ = eng.FreeTime(0, q, now)
			eng.OnEnqueue(0, 0, 3, cluster.P1, len(q4.Tasks))
			_ = eng.FreeTime(0, q4, now)
		}
	})
}

// busyView is a SystemView with populated, stable core queues (depth 1–3,
// heads running), the steady-state shape BuildCandidates sees mid-window.
type busyView struct {
	c      *cluster.Cluster
	queues []robustness.CoreQueue
}

func newBusyView(m *workload.Model) *busyView {
	v := &busyView{c: m.Cluster}
	cores := m.Cluster.Cores()
	v.queues = make([]robustness.CoreQueue, len(cores))
	for i, id := range cores {
		q := robustness.CoreQueue{Node: id.Node}
		depth := 1 + i%3
		for d := 0; d < depth; d++ {
			qt := robustness.QueuedTask{
				Type:     (i + d) % m.Params.TaskTypes,
				PState:   cluster.PState((i + d) % cluster.NumPStates),
				Deadline: 1e9,
			}
			if d == 0 {
				qt.Started = true
				qt.StartAt = 0
			}
			q.Tasks = append(q.Tasks, qt)
		}
		v.queues[i] = q
	}
	return v
}

func (v *busyView) NumCores() int                    { return v.c.TotalCores() }
func (v *busyView) CoreID(i int) cluster.CoreID      { return v.c.Cores()[i] }
func (v *busyView) Queue(i int) robustness.CoreQueue { return v.queues[i] }

// BenchmarkBuildCandidates measures candidate enumeration plus the full
// LL+en+rob filter chain over a busy cluster — the mapping hot path — with
// and without the cross-decision free-time engine. "fresh" derives every
// core's chain per decision (the pre-cache behavior); "cached" hits the
// engine's per-core chains, as the engines do between queue mutations.
func BenchmarkBuildCandidates(b *testing.B) {
	m := microModel(b)
	calc := robustness.NewCalculator(m)
	view := newBusyView(m)
	mapper := &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()}
	task := workload.Task{ID: 0, Type: 3, Arrival: 100, Deadline: 100 + 2.5*m.TAvg(), U: 0.5, Priority: 1}
	now := 100.0
	run := func(b *testing.B, ft *robustness.FreeTimeEngine) {
		rng := randx.NewStream(7)
		b.ReportAllocs()
		b.ResetTimer()
		before := pmf.ReadOpCounts()
		for i := 0; i < b.N; i++ {
			ctx := &sched.Context{
				Now: now, Task: task, Model: m, Calc: calc,
				EnergyLeft: m.DefaultEnergyBudget(), TasksLeft: 500, AvgQueueDepth: 1.8, Rand: rng,
				FreeTimes: ft,
			}
			cands := sched.BuildCandidates(ctx, view)
			_ = mapper.Map(ctx, cands)
		}
		d := pmf.ReadOpCounts().Sub(before)
		b.ReportMetric(float64(d.Convolutions)/float64(b.N), "conv/decision")
	}
	b.Run("fresh", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) {
		run(b, robustness.NewFreeTimeEngine(calc, view.NumCores()))
	})
}

// BenchmarkServeAdmit measures the serving engine's full admission path —
// Submit, the four-stage pipeline, mapping, placement — against a manual
// clock advanced at the equilibrium arrival spacing so completions retire
// and core queues stay at steady-state depth rather than growing with b.N.
func BenchmarkServeAdmit(b *testing.B) {
	s := randx.NewStream(99)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 10
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		b.Fatal(err)
	}
	clk := server.NewManualClock()
	eng, err := server.New(server.Config{
		Model:  m,
		Mapper: &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()},
		Clock:  clk,
		Seed:   7,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	dt := m.TAvg() / float64(m.Cluster.TotalCores())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Submit(server.TaskRequest{Type: i % p.TaskTypes}); err != nil {
			b.Fatal(err)
		}
		clk.Advance(dt)
	}
}

// BenchmarkServeAdmitWAL is BenchmarkServeAdmit with durability armed: every
// admission is logged to the write-ahead log and group-committed (fsync)
// before its decision returns. The acceptance bar for the durable path is
// staying under 2× the WAL-off admit figure — on this path each Submit pays
// one worst-case single-record commit, since the manual clock serializes the
// benchmark to one decision per group.
func BenchmarkServeAdmitWAL(b *testing.B) {
	s := randx.NewStream(99)
	c, err := cluster.Generate(s.Child("cluster"), cluster.PaperGenParams())
	if err != nil {
		b.Fatal(err)
	}
	p := workload.PaperParams()
	p.TaskTypes = 10
	p.PMFSamples = 300
	m, err := workload.BuildModel(s.Child("wl"), c, p)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	clk := server.NewManualClock()
	eng, err := server.New(server.Config{
		Model:          m,
		Mapper:         &sched.Mapper{Heuristic: sched.LightestLoad{}, Filters: sched.EnergyAndRobustness.Filters()},
		Clock:          clk,
		Seed:           7,
		WALPath:        dir + "/wal",
		CheckpointPath: dir + "/ckpt",
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	dt := m.TAvg() / float64(m.Cluster.TotalCores())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Submit(server.TaskRequest{Type: i % p.TaskTypes}); err != nil {
			b.Fatal(err)
		}
		clk.Advance(dt)
	}
}
