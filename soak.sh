#!/bin/sh
# End-to-end soak of the serving stack under the race detector:
#
#   1. build ecserve + ecload with -race
#   2. start ecserve with fault injection, brownout staging, and a finite
#      energy budget sized to survive the run
#   3. fire SOAK_TASKS bursty tasks at SOAK_MULT x the sustainable rate
#      (open loop — the server sees genuine overload)
#   4. SIGTERM the server and demand a clean drained shutdown
#
# Pass criteria (any failure exits non-zero):
#   - ecload gets an HTTP response for every request (no transport errors)
#   - ecserve exits 0: zero orphaned tasks and balanced terminal accounting
#   - the race detector stays silent in both processes (exit code 66 trips)
#   - the energy meter never drifts past the budget in the final report
#
# Tunables (env): SOAK_TASKS (default 10000), SOAK_MULT (2), SOAK_SCALE
# (4000 virtual units per wall second), SOAK_BUDGET (3 x ζ_max — idle draw
# alone empties 1 x in ~11.5s wall at this scale, so give the run headroom).
set -eu
cd "$(dirname "$0")"

N="${SOAK_TASKS:-10000}"
MULT="${SOAK_MULT:-2}"
SCALE="${SOAK_SCALE:-4000}"
BUDGET="${SOAK_BUDGET:-3}"

tmp="$(mktemp -d)"
srv=""
cleanup() {
    [ -n "$srv" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "soak: building race-instrumented ecserve + ecload"
go build -race -o "$tmp/ecserve" ./cmd/ecserve
go build -race -o "$tmp/ecload" ./cmd/ecload

"$tmp/ecserve" -addr 127.0.0.1:0 -scale "$SCALE" -budget "$BUDGET" -brownout \
    -faults "mtbf=4000,repair=300,recovery=requeue,retries=2,backoff=60,deadline-aware" \
    -rel -report "$tmp/report.json" >"$tmp/ecserve.log" 2>&1 &
srv=$!

# The banner is printed only after the listener is bound, so the address
# appearing in the log doubles as the readiness signal.
addr=""
i=0
while [ "$i" -lt 100 ]; do
    addr="$(sed -n 's#.*on http://\([^/]*\)/v1/tasks.*#\1#p' "$tmp/ecserve.log")"
    [ -n "$addr" ] && break
    kill -0 "$srv" 2>/dev/null || {
        echo "soak: ecserve died during startup:" >&2
        cat "$tmp/ecserve.log" >&2
        exit 1
    }
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "soak: ecserve never reported its address" >&2
    cat "$tmp/ecserve.log" >&2
    exit 1
fi
echo "soak: ecserve up on $addr (budget ${BUDGET}x, scale ${SCALE}x, faults live)"

"$tmp/ecload" -addr "$addr" -n "$N" -mult "$MULT" -seed 1 -q

echo "soak: SIGTERM -> drain"
kill -TERM "$srv"
rc=0
wait "$srv" || rc=$?
srv=""
cat "$tmp/ecserve.log"
if [ "$rc" -ne 0 ]; then
    echo "soak: FAIL — ecserve exited $rc (orphaned tasks, imbalance, or a data race)" >&2
    exit 1
fi

# The meter must never drift past ζ_max: consumed <= budget in the report.
awk '
    /"energyConsumed"/ { gsub(/[",]/, ""); consumed = $2 }
    /"energyBudget"/   { gsub(/[",]/, ""); budget = $2 }
    END {
        if (budget == "" || consumed == "") { print "soak: report missing energy fields"; exit 1 }
        if (consumed + 0 > budget + 1e-9) {
            printf "soak: FAIL — energy meter drifted past the budget: %s > %s\n", consumed, budget
            exit 1
        }
        printf "soak: energy %s / %s — within budget\n", consumed, budget
    }
' "$tmp/report.json"

echo "soak: OK ($N tasks at ${MULT}x, clean drain, race-clean)"
