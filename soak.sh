#!/bin/sh
# End-to-end soak of the serving stack under the race detector:
#
#   1. build ecserve + ecload with -race
#   2. start ecserve with fault injection, brownout staging, and a finite
#      energy budget sized to survive the run
#   3. fire SOAK_TASKS bursty tasks at SOAK_MULT x the sustainable rate
#      (open loop — the server sees genuine overload)
#   4. SIGTERM the server and demand a clean drained shutdown
#
# Pass criteria (any failure exits non-zero):
#   - ecload gets an HTTP response for every request (no transport errors)
#   - ecserve exits 0: zero orphaned tasks and balanced terminal accounting
#   - the race detector stays silent in both processes (exit code 66 trips)
#   - the energy meter never drifts past the budget in the final report
#
#   5. chaos stage: a second durable (-wal) server is SIGKILLed mid-burst
#      while ecload rides through with -retry-for, restarted with -recover
#      on the same address, drained — and the recovered accounting must be
#      clean (zero orphans), within budget, and the consumed-energy meter
#      must be monotone across the kill (no lost or double-debited joules).
#
# Tunables (env): SOAK_TASKS (default 10000), SOAK_MULT (2), SOAK_SCALE
# (4000 virtual units per wall second), SOAK_BUDGET (3 x ζ_max — idle draw
# alone empties 1 x in ~11.5s wall at this scale, so give the run headroom),
# CHAOS_TASKS (3000 — the kill-9 stage's burst).
set -eu
cd "$(dirname "$0")"

N="${SOAK_TASKS:-10000}"
MULT="${SOAK_MULT:-2}"
SCALE="${SOAK_SCALE:-4000}"
BUDGET="${SOAK_BUDGET:-3}"
CHAOS_N="${CHAOS_TASKS:-3000}"

tmp="$(mktemp -d)"
srv=""
cleanup() {
    [ -n "$srv" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_addr <logfile>: the banner is printed only after the listener is
# bound, so the address appearing in the log doubles as the readiness
# signal. Sets $addr; dies if the server process exits first.
wait_addr() {
    addr=""
    i=0
    # 30s: a race-instrumented -recover incarnation replays its WAL before
    # printing the banner, which can take well over 10s on a loaded machine.
    while [ "$i" -lt 300 ]; do
        addr="$(sed -n 's#.*on http://\([^/]*\)/v1/tasks.*#\1#p' "$1")"
        [ -n "$addr" ] && return 0
        kill -0 "$srv" 2>/dev/null || {
            echo "soak: ecserve died during startup:" >&2
            tail -50 "$1" >&2
            exit 1
        }
        i=$((i + 1))
        sleep 0.1
    done
    echo "soak: ecserve never reported its address" >&2
    tail -50 "$1" >&2
    exit 1
}

echo "soak: building race-instrumented ecserve + ecload"
go build -race -o "$tmp/ecserve" ./cmd/ecserve
go build -race -o "$tmp/ecload" ./cmd/ecload

"$tmp/ecserve" -addr 127.0.0.1:0 -scale "$SCALE" -budget "$BUDGET" -brownout \
    -faults "mtbf=4000,repair=300,recovery=requeue,retries=2,backoff=60,deadline-aware" \
    -rel -report "$tmp/report.json" >"$tmp/ecserve.log" 2>&1 &
srv=$!

wait_addr "$tmp/ecserve.log"
echo "soak: ecserve up on $addr (budget ${BUDGET}x, scale ${SCALE}x, faults live)"

"$tmp/ecload" -addr "$addr" -n "$N" -mult "$MULT" -seed 1 -q

echo "soak: SIGTERM -> drain"
kill -TERM "$srv"
rc=0
wait "$srv" || rc=$?
srv=""
cat "$tmp/ecserve.log"
if [ "$rc" -ne 0 ]; then
    echo "soak: FAIL — ecserve exited $rc (orphaned tasks, imbalance, or a data race)" >&2
    exit 1
fi

# The meter must never drift past ζ_max: consumed <= budget in the report.
awk '
    /"energyConsumed"/ { gsub(/[",]/, ""); consumed = $2 }
    /"energyBudget"/   { gsub(/[",]/, ""); budget = $2 }
    END {
        if (budget == "" || consumed == "") { print "soak: report missing energy fields"; exit 1 }
        if (consumed + 0 > budget + 1e-9) {
            printf "soak: FAIL — energy meter drifted past the budget: %s > %s\n", consumed, budget
            exit 1
        }
        printf "soak: energy %s / %s — within budget\n", consumed, budget
    }
' "$tmp/report.json"

echo "soak: stage 1 OK ($N tasks at ${MULT}x, clean drain, race-clean)"

# ---------------------------------------------------------------------------
# Stage 2: kill-9 chaos. A durable server takes a burst, is SIGKILLed in the
# middle of it, and is restarted with -recover on the same address while
# ecload keeps retrying its unacknowledged requests. Nothing the first
# incarnation acked may be lost, the drained accounting must balance, and
# the energy meter must resume from (never below, never double-counting)
# the last durably logged consumption.
# ---------------------------------------------------------------------------
echo "soak: stage 2 — kill -9 mid-burst, -recover restart"
FAULTS="mtbf=4000,repair=300,recovery=requeue,retries=2,backoff=60,deadline-aware"
"$tmp/ecserve" -addr 127.0.0.1:0 -scale "$SCALE" -budget "$BUDGET" -brownout \
    -faults "$FAULTS" -rel -wal "$tmp/wal" -checkpoint-every 500ms \
    >"$tmp/chaos1.log" 2>&1 &
srv=$!
wait_addr "$tmp/chaos1.log"
echo "soak: durable ecserve up on $addr (wal + 500ms checkpoints)"

"$tmp/ecload" -addr "$addr" -n "$CHAOS_N" -mult "$MULT" -seed 2 -q \
    -retry-for 60s >"$tmp/ecload2.log" 2>&1 &
load=$!

# Kill once the WAL shows the burst is genuinely in flight: enough durable
# records to guarantee admitted, mapped, and started tasks die with the
# process. Polling the log keeps the kill mid-burst at any machine speed.
i=0
while :; do
    lines="$(wc -l <"$tmp/wal.1" 2>/dev/null || echo 0)"
    [ "$lines" -ge 200 ] && break
    kill -0 "$load" 2>/dev/null || {
        echo "soak: FAIL — ecload finished before the kill; chaos stage never engaged" >&2
        exit 1
    }
    i=$((i + 1))
    if [ "$i" -ge 300 ]; then
        echo "soak: FAIL — WAL never reached kill threshold" >&2
        exit 1
    fi
    sleep 0.1
done
kill -9 "$srv" 2>/dev/null
wait "$srv" 2>/dev/null || true
srv=""
echo "soak: SIGKILL delivered with $lines WAL lines durable; ecload retrying"

# The last durable consumed-energy coordinate (reject records carry no
# meter state, so they are excluded): the recovered run must never report
# less than this, and must never re-charge what is already logged.
E1="$(grep -v '"k":"reject"' "$tmp/wal.1" | grep -o '"en":[0-9.eE+-]*' | tail -1 | cut -d: -f2)"
if [ -z "$E1" ]; then
    echo "soak: FAIL — no durable energy coordinate in the WAL" >&2
    exit 1
fi

"$tmp/ecserve" -addr "$addr" -scale "$SCALE" -budget "$BUDGET" -brownout \
    -faults "$FAULTS" -rel -wal "$tmp/wal" -checkpoint-every 500ms \
    -recover -report "$tmp/report2.json" >"$tmp/chaos2.log" 2>&1 &
srv=$!
wait_addr "$tmp/chaos2.log"
grep "recovered from" "$tmp/chaos2.log" >&2 || true

rc=0
wait "$load" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "soak: FAIL — ecload did not ride through the kill (exit $rc):" >&2
    tail -5 "$tmp/ecload2.log" >&2
    exit 1
fi

echo "soak: SIGTERM -> drain (recovered incarnation)"
kill -TERM "$srv"
rc=0
wait "$srv" || rc=$?
srv=""
cat "$tmp/chaos2.log"
if [ "$rc" -ne 0 ]; then
    echo "soak: FAIL — recovered ecserve exited $rc (orphans, imbalance, or a data race)" >&2
    exit 1
fi

awk -v e1="$E1" '
    /"energyConsumed"/ { gsub(/[",]/, ""); consumed = $2 }
    /"energyBudget"/   { gsub(/[",]/, ""); budget = $2 }
    END {
        if (budget == "" || consumed == "") { print "soak: chaos report missing energy fields"; exit 1 }
        if (consumed + 0 > budget + 1e-9) {
            printf "soak: FAIL — recovered meter drifted past the budget: %s > %s\n", consumed, budget
            exit 1
        }
        if (consumed + 1e-6 < e1 + 0) {
            printf "soak: FAIL — consumed energy regressed across the kill: %s < %s (lost debits)\n", consumed, e1
            exit 1
        }
        printf "soak: energy monotone across kill (%s durable -> %s drained, budget %s)\n", e1, consumed, budget
    }
' "$tmp/report2.json"

# ---------------------------------------------------------------------------
# Stage 3: adversarial multi-tenant soak. Two compliant gold tenants at a
# combined 2x run once alone (the attack-free baseline) and once alongside a
# bronze tenant flooding impossible deadlines at 4x. Identical seeds and
# per-tenant child streams make the gold arrival schedules bit-identical
# across the two runs, so the comparison isolates the attack's effect:
#   - gold on-time completions under attack >= 95% of the baseline
#   - the flooding tenant is quarantined at least once
#   - both drains exit 0 (zero orphans, balanced accounting, race-clean)
#   - energy stays within budget
# ---------------------------------------------------------------------------
echo "soak: stage 3 — adversarial multi-tenant (bronze flood vs gold SLOs)"
TEN_N="${TENANT_TASKS:-600}"
# Stage 3 runs at a gentler time scale than the overload stages: the gold
# baseline must sit below the race-instrumented decide loop's capacity, or
# the 95% comparison would measure CPU contention instead of isolation.
SCALE3="${TENANT_SCALE:-1500}"

# The flood tenant is armed with the quotas under test: a 1x token bucket
# (its 4x offered rate never reaches the queue) and a bounded queue share
# (its decide-time backlog cannot crowd gold out of the admission queue).
# The abuse detector then quarantines what the quotas let through.
cat >"$tmp/spec-base.json" <<'EOF'
{"tenants":[
  {"id":"gold-a","slo":"gold","mult":1},
  {"id":"gold-b","slo":"gold","mult":1}
]}
EOF
cat >"$tmp/spec-attack.json" <<'EOF'
{"tenants":[
  {"id":"gold-a","slo":"gold","mult":1},
  {"id":"gold-b","slo":"gold","mult":1},
  {"id":"flood","slo":"bronze","profile":"deadline-flood","mult":4,"rateLimit":1,"burst":8,"queueShare":0.25}
]}
EOF

# gold_ontime <logfile>: summed on-time completions across the gold tenants
# from the drained server's per-tenant report lines.
gold_ontime() {
    awk '/^  tenant gold-/ {
        for (i = 1; i <= NF; i++) if ($i ~ /^ontime=/) { split($i, a, "="); s += a[2] }
    } END { print s + 0 }' "$1"
}

# Both incarnations run the identical server config — the attack spec arms
# quotas for all three tenants; the baseline run simply never uses flood's.
for side in base attack; do
    "$tmp/ecserve" -addr 127.0.0.1:0 -scale "$SCALE3" -budget "$BUDGET" -brownout \
        -tenants "$tmp/spec-attack.json" -report "$tmp/report-$side.json" \
        >"$tmp/tenant-$side.log" 2>&1 &
    srv=$!
    wait_addr "$tmp/tenant-$side.log"
    if [ "$side" = base ]; then
        n="$TEN_N"
        spec="$tmp/spec-base.json"
    else
        n=$((TEN_N * 3)) # mults 1+1+4: gold volume stays $TEN_N, flood gets 2x that
        spec="$tmp/spec-attack.json"
    fi
    echo "soak: $side run up on $addr ($n requests from $spec)"
    "$tmp/ecload" -addr "$addr" -n "$n" -seed 11 -q -tenants "$spec"
    kill -TERM "$srv"
    rc=0
    wait "$srv" || rc=$?
    srv=""
    if [ "$rc" -ne 0 ]; then
        echo "soak: FAIL — $side-run ecserve exited $rc (orphans, imbalance, or a data race):" >&2
        tail -20 "$tmp/tenant-$side.log" >&2
        exit 1
    fi
done

grep '^  tenant ' "$tmp/tenant-attack.log"

BASE_GOLD="$(gold_ontime "$tmp/tenant-base.log")"
ATK_GOLD="$(gold_ontime "$tmp/tenant-attack.log")"
QUARS="$(awk '/^  tenant flood:/ {
    for (i = 1; i <= NF; i++) if ($i ~ /^quarantines=/) { split($i, a, "="); print a[2]; exit }
}' "$tmp/tenant-attack.log")"

[ "${BASE_GOLD:-0}" -gt 0 ] || {
    echo "soak: FAIL — baseline run completed no gold tasks on time; comparison is vacuous" >&2
    exit 1
}
[ "${QUARS:-0}" -ge 1 ] || {
    echo "soak: FAIL — flooding tenant was never quarantined (quarantines=${QUARS:-missing})" >&2
    exit 1
}
awk -v base="$BASE_GOLD" -v atk="$ATK_GOLD" 'BEGIN {
    if (atk + 0 < 0.95 * base) {
        printf "soak: FAIL — gold on-time completions under attack %d < 95%% of baseline %d\n", atk, base
        exit 1
    }
    printf "soak: gold SLOs survived the flood: %d on-time under attack vs %d baseline (flood quarantined)\n", atk, base
}'

awk '
    /"energyConsumed"/ { gsub(/[",]/, ""); consumed = $2 }
    /"energyBudget"/   { gsub(/[",]/, ""); budget = $2 }
    END {
        if (budget == "" || consumed == "") { print "soak: attack report missing energy fields"; exit 1 }
        if (consumed + 0 > budget + 1e-9) {
            printf "soak: FAIL — attack-run meter drifted past the budget: %s > %s\n", consumed, budget
            exit 1
        }
        printf "soak: energy %s / %s — within budget under attack\n", consumed, budget
    }
' "$tmp/report-attack.json"

# ---------------------------------------------------------------------------
# Stage 4: shard-kill chaos. A three-shard router takes a gold-tenant burst
# twice with identical seeds: once undisturbed (the no-kill baseline) and
# once with one shard killed mid-burst through the chaos endpoint. The
# router must route around the corpse — failover for racing requests,
# re-routed queued work, reclaimed sub-budget for the survivors:
#   - gold on-time completions with the kill >= 90% of the no-kill baseline
#   - /v1/readyz reports the victim dead while the router keeps admitting
#   - both drains exit 0 (zero orphans, balanced merged ledgers, race-clean)
#   - global energy stays within ζ_max across the reclamation
# ---------------------------------------------------------------------------
echo "soak: stage 4 — shard-kill chaos (3 shards, kill 1 mid-burst)"
SHARD_N="${SHARD_TASKS:-600}"
SCALE4="${SHARD_SCALE:-1500}"

# The offered load (0.5x combined) is sized to fit the two surviving
# shards (~2/3 of the cores, so ~0.75x utilization after the kill): this
# stage measures failover robustness — re-routed work, reclaimed budget,
# lost in-flight tasks — not the arithmetic fact that 2x overload minus a
# third of the capacity completes fewer tasks.
cat >"$tmp/spec-shard.json" <<'EOF'
{"tenants":[
  {"id":"gold-a","slo":"gold","mult":0.25},
  {"id":"gold-b","slo":"gold","mult":0.25}
]}
EOF

for side in nokill kill; do
    "$tmp/ecserve" -addr 127.0.0.1:0 -scale "$SCALE4" -budget "$BUDGET" -brownout \
        -shards 3 -chaos -tenants "$tmp/spec-shard.json" \
        -report "$tmp/report-$side.json" >"$tmp/shard-$side.log" 2>&1 &
    srv=$!
    wait_addr "$tmp/shard-$side.log"
    echo "soak: $side run up on $addr (3 shards, chaos endpoint armed)"
    "$tmp/ecload" -addr "$addr" -n "$SHARD_N" -seed 21 -q \
        -tenants "$tmp/spec-shard.json" -retry-for 30s >"$tmp/shardload-$side.log" 2>&1 &
    load=$!
    if [ "$side" = kill ]; then
        # Kill shard 1 once the burst is genuinely in flight: poll the
        # stats document until the router has seen a meaningful slice of
        # the load, so the victim dies with queued and running work.
        i=0
        while :; do
            recv="$(curl -fsS "http://$addr/v1/stats" 2>/dev/null |
                grep -o '"received":[0-9]*' | head -1 | cut -d: -f2)"
            [ "${recv:-0}" -ge $((SHARD_N / 4)) ] && break
            kill -0 "$load" 2>/dev/null || {
                echo "soak: FAIL — ecload finished before the shard kill engaged" >&2
                exit 1
            }
            i=$((i + 1))
            if [ "$i" -ge 300 ]; then
                echo "soak: FAIL — router never reached the shard-kill threshold" >&2
                exit 1
            fi
            sleep 0.1
        done
        curl -fsS -X POST "http://$addr/v1/chaos/kill?shard=1" >"$tmp/chaoskill.json" || {
            echo "soak: FAIL — chaos kill endpoint refused" >&2
            exit 1
        }
        grep -q '"killed":1' "$tmp/chaoskill.json" || {
            echo "soak: FAIL — chaos kill did not acknowledge shard 1" >&2
            exit 1
        }
        curl -fsS "http://$addr/v1/readyz" >"$tmp/readyz.json" || {
            echo "soak: FAIL — router stopped admitting after a single shard death" >&2
            exit 1
        }
        grep -Eq '"health": ?"dead"' "$tmp/readyz.json" || {
            echo "soak: FAIL — readyz does not report the killed shard dead" >&2
            exit 1
        }
        echo "soak: shard 1 killed at received=$recv; router still ready"
    fi
    rc=0
    wait "$load" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "soak: FAIL — ecload did not ride through the $side run (exit $rc):" >&2
        tail -5 "$tmp/shardload-$side.log" >&2
        exit 1
    fi
    kill -TERM "$srv"
    rc=0
    wait "$srv" || rc=$?
    srv=""
    if [ "$rc" -ne 0 ]; then
        echo "soak: FAIL — $side-run ecserve exited $rc (orphans, imbalance, or a data race):" >&2
        tail -20 "$tmp/shard-$side.log" >&2
        exit 1
    fi
done

grep '^  tenant ' "$tmp/shard-kill.log" || true

BASE_GOLD="$(gold_ontime "$tmp/shard-nokill.log")"
KILL_GOLD="$(gold_ontime "$tmp/shard-kill.log")"
[ "${BASE_GOLD:-0}" -gt 0 ] || {
    echo "soak: FAIL — no-kill baseline completed no gold tasks on time; comparison is vacuous" >&2
    exit 1
}
awk -v base="$BASE_GOLD" -v kl="$KILL_GOLD" 'BEGIN {
    if (kl + 0 < 0.90 * base) {
        printf "soak: FAIL — gold on-time with a shard killed %d < 90%% of no-kill baseline %d\n", kl, base
        exit 1
    }
    printf "soak: failover held gold SLOs: %d on-time with 1/3 shards killed vs %d baseline\n", kl, base
}'

grep -Eq '"health": ?"dead"' "$tmp/report-kill.json" || {
    echo "soak: FAIL — drained report does not record the dead shard" >&2
    exit 1
}

awk '
    /"energyConsumed"/ && !c { gsub(/[",]/, ""); consumed = $2; c = 1 }
    /"energyBudget"/ && !b   { gsub(/[",]/, ""); budget = $2; b = 1 }
    END {
        if (budget == "" || consumed == "") { print "soak: shard-kill report missing energy fields"; exit 1 }
        if (consumed + 0 > budget + 1e-9) {
            printf "soak: FAIL — reclaimed budgets let the meter drift past ζ_max: %s > %s\n", consumed, budget
            exit 1
        }
        printf "soak: global energy %s / %s — within ζ_max across shard death and reclamation\n", consumed, budget
    }
' "$tmp/report-kill.json"

echo "soak: OK ($N tasks at ${MULT}x + $CHAOS_N through kill-9 + adversarial multi-tenant + shard-kill failover, clean drains, race-clean)"
