// Command ectrace runs one simulation trial with full event recording and
// renders what happened: per-core ASCII timelines (which P-state each core
// ran in and when, deadline misses, the energy-exhaustion instant), the
// DVFS occupancy profile, the in-system backlog peaks, and optional
// JSONL/CSV event-log export for external tooling.
//
// Usage:
//
//	ectrace -heuristic LL -filters en+rob
//	ectrace -heuristic MECT -filters none -window 300 -jsonl events.jsonl
//	ectrace -heuristic LL -faults "mtbf=2000,repair=400,recovery=requeue" -brownout
//
// SIGINT/SIGTERM cancel the run mid-trial; -trial-timeout bounds the
// trial's wall clock.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/randx"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ectrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		heuristic = flag.String("heuristic", "LL", "heuristic: SQ, MECT, LL, Random, PLL, GreenLL, MaxRho, MinEEC")
		filters   = flag.String("filters", "en+rob", "filter variant: none, en, rob, en+rob")
		window    = flag.Int("window", 300, "tasks in the trial")
		seed      = flag.Uint64("seed", 0, "experiment seed (0 = paper default)")
		budget    = flag.Float64("budget", 1, "energy budget scale (<=0 = unconstrained)")
		width     = flag.Int("width", 100, "timeline width in characters")
		jsonl     = flag.String("jsonl", "", "write the event log as JSONL to this file")
		csvPath   = flag.String("csv", "", "write the event log as CSV to this file")
		listen    = flag.String("listen", "", "serve /metrics, /metrics.json, /debug/vars, /debug/pprof on this address")
		hold      = flag.Bool("hold", false, "with -listen: block after the run so the endpoints stay up")
		faults    = flag.String("faults", "", "fault-injection spec, key=value list: mtbf, dist=exp|weibull, shape, repair, node-mtbf, recovery=drop|requeue, retries, backoff, deadline-aware")
		brownout  = flag.Bool("brownout", false, "replace the hard energy halt with the staged 90/95/98% brownout schedule")
		exactRho  = flag.Bool("exactrho", false, "evaluate candidate ρ by direct double sum instead of the compacted completion PMF (faster, not bit-identical to the paper pipeline)")
		sparsePMF = flag.Bool("sparsepmf", false, "force the original sparse impulse pipeline instead of the fixed-grid lattice fast path (reproduces the paper pipeline bit-for-bit)")

		trialTimeout = flag.Duration("trial-timeout", 0, "wall-clock limit for the trial (0 = none)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := core.DefaultSpec()
	spec.Trials = 1
	spec.Workload.WindowSize = *window
	spec.Workload.BurstLen = *window / 5
	spec.BudgetScale = *budget
	if *seed != 0 {
		spec.Seed = *seed
	}
	var variant core.FilterVariant
	found := false
	for _, v := range sched.AllFilterVariants() {
		if v.String() == *filters {
			variant, found = v, true
		}
	}
	if !found {
		return fmt.Errorf("unknown filter variant %q", *filters)
	}
	h, err := core.HeuristicByName(*heuristic)
	if err != nil {
		return err
	}

	sys, err := core.NewSystemContext(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(sys.Describe())

	rec := trace.NewEventLog()
	reg := metrics.NewRegistry()
	if *listen != "" {
		srv, err := metrics.Serve(*listen, reg.Snapshot)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics (pprof under /debug/pprof)\n", srv.Addr)
	}
	cfg := sim.Config{
		Model:        sys.Model(),
		Mapper:       &sched.Mapper{Heuristic: h, Filters: variant.Filters()},
		EnergyBudget: sys.Budget(),
		Observer:     sim.Multi(rec),
		Metrics:      reg,
		ExactRho:     *exactRho,
		SparsePMF:    *sparsePMF,
	}
	if *faults != "" {
		if cfg.Faults, err = core.ParseFaultSpec(*faults); err != nil {
			return err
		}
	}
	if *brownout {
		cfg.Brownout = core.DefaultBrownoutStages()
	}
	runCtx := ctx
	if *trialTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, *trialTimeout)
		defer cancel()
	}
	res, err := sim.RunContext(runCtx, cfg, sys.Env().Trial(0), randx.NewStream(spec.Seed).ChildN("decisions", 0))
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; partial event log discarded")
		} else if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "trial exceeded -trial-timeout %v\n", *trialTimeout)
		}
		return err
	}
	fmt.Printf("\n%s\n", res)
	fmt.Println(rec.Summary())

	fmt.Println("core timelines:")
	fmt.Println(rec.Timeline(*width))

	occ := rec.PStateOccupancy()
	total := 0.0
	for _, v := range occ {
		total += v
	}
	fmt.Println("DVFS occupancy (execution core-time share per P-state):")
	for _, ps := range cluster.AllPStates() {
		share := 0.0
		if total > 0 {
			share = 100 * occ[ps] / total
		}
		fmt.Printf("  %v: %6.2f%%  (%.0f core-tu)\n", ps, share, occ[ps])
	}

	times, counts := rec.InSystemSeries()
	peak, peakT := 0, 0.0
	for i, c := range counts {
		if c > peak {
			peak, peakT = c, times[i]
		}
	}
	fmt.Printf("\npeak backlog: %d tasks in system at t=%.0f\n", peak, peakT)

	if eT, eE := rec.EnergySeries(); len(eT) > 0 {
		fmt.Printf("energy trajectory: %d samples, t=[%.0f, %.0f], consumed %.4g -> %.4g\n",
			len(eT), eT[0], eT[len(eT)-1], eE[0], eE[len(eE)-1])
	}
	snap := reg.Snapshot()
	if conv, ok := snap.Value("sched_candidates_total"); ok {
		hits := snap.SumByName("robustness_freetime_cache_hits_total")
		misses := snap.SumByName("robustness_freetime_cache_misses_total")
		ratio := 0.0
		if hits+misses > 0 {
			ratio = 100 * hits / (hits + misses)
		}
		fmt.Printf("metrics: %.0f candidates enumerated, free-time cache %.1f%% hit ratio, %.0f events processed\n",
			conv, ratio, snap.SumByName("sim_events_total"))
	}

	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", *jsonl, rec.Len())
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *hold && *listen != "" {
		fmt.Println("holding; interrupt to exit")
		<-ctx.Done()
		fmt.Fprintln(os.Stderr)
	}
	return nil
}
