// Command ecload is a seeded, open-loop, bursty load generator for
// ecserve: it fetches the server's workload parameters from GET /v1/model,
// builds the paper's fast/slow/fast arrival schedule (scaled by -mult
// relative to the equilibrium rate λ_eq), and fires task submissions at
// their scheduled wall instants regardless of how the server responds —
// open loop, so an overloaded server sees genuine overload instead of a
// generator politely backing off.
//
// Usage:
//
//	ecload -addr localhost:9090 -n 10000 -mult 2      # 2× sustainable rate
//	ecload -n 1000 -mult 0.5 -seed 7                  # gentle, reproducible
//
// The exit status is 0 when every request received an HTTP response (any
// status — 429/503 are the server working as designed) and 1 on transport
// errors or a missing server.
//
// With -retry-for set, a transport error does not burn the request:
// ecload reconnects with capped exponential backoff (100ms doubling to 2s,
// each sleep jittered to a seeded 50–100% fraction of the step so the herd
// desynchronizes) and resends until the window expires, so the seeded stream
// resumes from exactly the requests the server never acknowledged. This is
// how the chaos harness rides through an ecserve kill-9 + -recover restart:
// acked requests stay acked, unacked ones retry into the recovered server.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/randx"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecload:", err)
		os.Exit(1)
	}
}

// modelInfo mirrors server.ModelInfo (decoded loosely so ecload keeps
// working as the server grows fields).
type modelInfo struct {
	TaskTypes       int     `json:"taskTypes"`
	Cores           int     `json:"cores"`
	TAvg            float64 `json:"tAvg"`
	EquilibriumRate float64 `json:"equilibriumRate"`
	TimeScale       float64 `json:"timeScale"`
	Policy          string  `json:"policy"`
}

// The paper's burst shape (§VI): the leading and trailing fifths of the
// window arrive at λ_fast = (28/8)·λ_eq·mult and the middle three fifths
// at λ_slow = (28/48)·λ_eq·mult, so the same -mult both overloads the
// bursts and underloads the lull, exactly like the offline trials.
const (
	fastFactor = 28.0 / 8
	slowFactor = 28.0 / 48
)

func run() error {
	var (
		addr     = flag.String("addr", "localhost:9090", "ecserve address (host:port)")
		n        = flag.Int("n", 10000, "number of tasks to submit")
		mult     = flag.Float64("mult", 2, "arrival-rate multiplier relative to the sustainable rate λ_eq")
		seed     = flag.Uint64("seed", 1, "generator seed (arrivals, task types)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout (includes waiting for a pooled connection)")
		conns    = flag.Int("conns", 512, "connection-pool bound; requests past it queue client-side")
		quiet    = flag.Bool("q", false, "suppress the progress line")
		logPath  = flag.String("log", "", "record the generated arrival stream (seed, per-request virtual send time, type, tenant, SLO class, deadline) as JSONL to this file")
		retryFor = flag.Duration("retry-for", 0, "on transport errors, reconnect with capped exponential backoff and resend the unacked request for up to this long (0 = fail immediately)")
		tenants  = flag.String("tenants", "", "tenant-spec JSON file (multi-tenant mode): compose per-tenant arrival processes from the spec's profiles instead of the single -mult stream; -n splits across tenants proportional to their mult")
	)
	flag.Parse()
	if *n < 1 {
		return fmt.Errorf("-n %d must be >= 1", *n)
	}
	if *mult <= 0 {
		return fmt.Errorf("-mult %v must be > 0", *mult)
	}

	base := "http://" + *addr
	// The default transport keeps only two idle connections per host, so a
	// burst of thousands of concurrent submissions turns into thousands of
	// simultaneous dials — enough to overflow the listen backlog and fail
	// requests in the transport instead of in the server's admission queue,
	// which is the layer under test. Bound the pool instead: excess requests
	// queue for a connection client-side while the server's queue stays
	// saturated, which is the overload shape the paper's trials model.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conns,
			MaxIdleConnsPerHost: *conns,
			MaxConnsPerHost:     *conns,
		},
	}
	info, err := fetchModel(client, base)
	if err != nil {
		return err
	}
	if info.TaskTypes < 1 || info.EquilibriumRate <= 0 || info.TimeScale <= 0 {
		return fmt.Errorf("server model document is degenerate: %+v", info)
	}

	// Arrival times are drawn on the virtual axis (where λ_eq lives), then
	// divided by the server's time scale to get wall offsets. Everything —
	// arrivals, types, per-tenant splits — is drawn up front so the stream is
	// fully determined before the first request fires; the -log file then
	// describes exactly what will be sent, independent of response timing.
	root := randx.NewStream(*seed)
	var reqs []genReq
	if *tenants != "" {
		data, rerr := os.ReadFile(*tenants)
		if rerr != nil {
			return rerr
		}
		spec, serr := workload.ParseTenantSpec(data)
		if serr != nil {
			return serr
		}
		if reqs, err = tenantRequests(root, spec, *n, info); err != nil {
			return err
		}
		fmt.Printf("ecload: %d tasks across %d tenant(s) against %s (%s, %d cores, scale %g)\n",
			len(reqs), len(spec.Tenants), base, info.Policy, info.Cores, info.TimeScale)
	} else {
		if reqs, err = singleRequests(root, *n, *mult, info); err != nil {
			return err
		}
		fmt.Printf("ecload: %d tasks at %.2fx λ_eq against %s (%s, %d cores, scale %g)\n",
			len(reqs), *mult, base, info.Policy, info.Cores, info.TimeScale)
	}
	total := len(reqs)
	if *logPath != "" {
		if err := writeStreamLog(*logPath, *seed, *mult, info, reqs); err != nil {
			return err
		}
		fmt.Printf("ecload: arrival stream logged to %s\n", *logPath)
	}

	var (
		wg         sync.WaitGroup
		codes      sync.Map // int -> *atomic.Int64
		netErrs    atomic.Int64
		reconnects atomic.Int64
		done       atomic.Int64
		start      = time.Now()
		countFor   = func(code int) *atomic.Int64 {
			if c, ok := codes.Load(code); ok {
				return c.(*atomic.Int64)
			}
			c, _ := codes.LoadOrStore(code, new(atomic.Int64))
			return c.(*atomic.Int64)
		}
	)
	// submit fires one request, reconnecting with capped exponential backoff
	// for up to -retry-for on transport errors. Only an unacknowledged
	// request retries: once any HTTP status comes back the server has seen
	// (and durably logged, when running with a WAL) the submission.
	//
	// Each sleep is jittered to a seeded uniform fraction of the backoff
	// step (50–100%): thousands of goroutines cut off by the same server
	// death would otherwise march through identical 100/200/400ms ladders
	// and reconnect as one thundering herd, re-overflowing the listen
	// backlog of the restarted (or surviving-shard) server in lockstep. The
	// jitter streams are children of the generator seed, so the retry
	// schedule is as reproducible as the arrival stream itself.
	jitterRoot := root.Child("retry-jitter")
	submit := func(body []byte, idx int) {
		backoff := 100 * time.Millisecond
		giveUp := time.Now().Add(*retryFor)
		var jrn *randx.Stream
		for {
			resp, err := client.Post(base+"/v1/tasks", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
				countFor(resp.StatusCode).Add(1)
				return
			}
			if *retryFor <= 0 || time.Now().After(giveUp) {
				netErrs.Add(1)
				return
			}
			reconnects.Add(1)
			if jrn == nil {
				jrn = jitterRoot.ChildN("req", idx)
			}
			time.Sleep(time.Duration((0.5 + 0.5*jrn.Float64()) * float64(backoff)))
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
		}
	}
	for i := range reqs {
		body := reqs[i].body()
		at := start.Add(time.Duration(reqs[i].at / info.TimeScale * float64(time.Second)))
		wg.Add(1)
		go func(body []byte, at time.Time, idx int) {
			defer wg.Done()
			time.Sleep(time.Until(at)) // negative is a no-op: fire immediately
			submit(body, idx)
			done.Add(1)
		}(body, at, i)
	}
	if !*quiet {
		stopProg := make(chan struct{})
		go func() {
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					fmt.Fprintf(os.Stderr, "\r%d/%d", done.Load(), total)
				case <-stopProg:
					fmt.Fprintf(os.Stderr, "\r%d/%d\n", done.Load(), total)
					return
				}
			}
		}()
		defer close(stopProg)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var keys []int
	codes.Range(func(k, _ any) bool { keys = append(keys, k.(int)); return true })
	sort.Ints(keys)
	fmt.Printf("ecload: %d tasks in %.1fs (%.1f req/s offered)\n", total, elapsed.Seconds(), float64(total)/elapsed.Seconds())
	for _, k := range keys {
		c, _ := codes.Load(k)
		fmt.Printf("  %d %-12s %6d\n", k, codeLabel(k), c.(*atomic.Int64).Load())
	}
	if rc := reconnects.Load(); rc > 0 {
		fmt.Printf("  reconnect attempts %6d\n", rc)
	}
	if ne := netErrs.Load(); ne > 0 {
		fmt.Printf("  transport errors %6d\n", ne)
		return fmt.Errorf("%d request(s) failed at the transport layer", ne)
	}
	return nil
}

// genReq is one scheduled submission, fully drawn before the first request
// fires: the virtual send instant plus every payload field.
type genReq struct {
	at     float64
	typ    int
	tenant string
	slo    string
	// slack, when set, is sent with the request (the deadline-flood profile
	// sends zero slack: well-formed, immediately infeasible).
	slack *float64
}

// body marshals the submission payload.
func (g *genReq) body() []byte {
	doc := map[string]any{"type": g.typ}
	if g.tenant != "" {
		doc["tenant"] = g.tenant
		doc["slo"] = g.slo
	}
	if g.slack != nil {
		doc["slack"] = *g.slack
	}
	b, _ := json.Marshal(doc)
	return b
}

// singleRequests draws the pre-tenancy stream: the paper's fast/slow/fast
// burst shape at mult·λ_eq, anonymous submissions.
func singleRequests(root *randx.Stream, n int, mult float64, info *modelInfo) ([]genReq, error) {
	rate := mult * info.EquilibriumRate
	burst := n / 5
	arrivals, err := randx.PoissonArrivals(root.Child("arrivals"), []randx.RatePhase{
		{Rate: rate * fastFactor, Count: burst},
		{Rate: rate * slowFactor, Count: n - 2*burst},
		{Rate: rate * fastFactor, Count: burst},
	})
	if err != nil {
		return nil, err
	}
	types := root.Child("types")
	reqs := make([]genReq, n)
	for i := range reqs {
		reqs[i] = genReq{at: arrivals[i], typ: types.IntN(info.TaskTypes)}
	}
	return reqs, nil
}

// tenantRequests composes one merged schedule from per-tenant arrival
// processes. Each tenant draws from its own child stream — an adversarial
// tenant's draws cannot shift a compliant tenant's schedule by even one
// instant, which is what lets the soak harness compare a gold tenant's
// attack run against its attack-free baseline request for request. n splits
// across tenants proportional to their mult (largest-remainder rounding, so
// the split always sums to n).
func tenantRequests(root *randx.Stream, spec *workload.TenantSpec, n int, info *modelInfo) ([]genReq, error) {
	var active []workload.TenantProfile
	sum := 0.0
	for _, t := range spec.Tenants {
		if t.Mult > 0 {
			active = append(active, t)
			sum += t.Mult
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("tenant spec has no tenant with mult > 0; nothing to send")
	}
	counts := make([]int, len(active))
	assigned := 0
	for i, t := range active {
		counts[i] = int(math.Floor(float64(n) * t.Mult / sum))
		assigned += counts[i]
	}
	for i := 0; assigned < n; i = (i + 1) % len(active) {
		counts[i]++
		assigned++
	}
	var reqs []genReq
	for i, t := range active {
		if counts[i] == 0 {
			continue
		}
		s := root.Child("tenant:" + t.ID)
		arrivals, err := t.Arrivals(s.Child("arrivals"), counts[i], info.EquilibriumRate)
		if err != nil {
			return nil, err
		}
		types := s.Child("types")
		slo := t.Class().String()
		var slack *float64
		if t.Profile == workload.ProfileDeadlineFlood {
			slack = new(float64) // zero slack: every deadline already passed
		}
		for _, at := range arrivals {
			reqs = append(reqs, genReq{at: at, typ: types.IntN(info.TaskTypes),
				tenant: t.ID, slo: slo, slack: slack})
		}
	}
	// Merge by send time; ties keep spec order (stable), so the schedule is a
	// pure function of (seed, spec, n).
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].at < reqs[j].at })
	return reqs, nil
}

// streamLogHeader is the first line of the -log file: everything needed to
// regenerate the exact same stream (seed + shape) plus the server identity
// it was aimed at.
type streamLogHeader struct {
	Format    string  `json:"format"`
	Seed      uint64  `json:"seed"`
	N         int     `json:"n"`
	Mult      float64 `json:"mult"`
	TaskTypes int     `json:"taskTypes"`
	TimeScale float64 `json:"timeScale"`
	Policy    string  `json:"policy"`
}

// streamLogRow is one generated request. T is the virtual send time (the
// same axis ecserve and the offline trials use); Deadline is -1 because the
// deadline is assigned server-side at admission — the flight trace recorded
// by ecserve -flight carries the assigned value for each admitted task.
// Tenant/SLO tag multi-tenant submissions (omitempty: single-tenant logs are
// byte-identical to the pre-tenancy format).
type streamLogRow struct {
	I        int     `json:"i"`
	T        float64 `json:"t"`
	Type     int     `json:"type"`
	Tenant   string  `json:"tenant,omitempty"`
	SLO      string  `json:"slo,omitempty"`
	Deadline float64 `json:"dl"`
}

// writeStreamLog records the fully-drawn arrival stream as JSONL before the
// first request fires, via a temp-file rename so a crash mid-run never
// leaves a torn log behind.
func writeStreamLog(path string, seed uint64, mult float64, info *modelInfo, reqs []genReq) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(streamLogHeader{
		Format:    "ecload/v1",
		Seed:      seed,
		N:         len(reqs),
		Mult:      mult,
		TaskTypes: info.TaskTypes,
		TimeScale: info.TimeScale,
		Policy:    info.Policy,
	}); err != nil {
		return err
	}
	for i := range reqs {
		if err := enc.Encode(streamLogRow{
			I: i, T: reqs[i].at, Type: reqs[i].typ,
			Tenant: reqs[i].tenant, SLO: reqs[i].slo, Deadline: -1,
		}); err != nil {
			return err
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ecload-log-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func codeLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "mapped"
	case http.StatusUnprocessableEntity:
		return "shed"
	case http.StatusTooManyRequests:
		return "backpressure"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timed-out"
	case http.StatusBadRequest:
		return "bad-request"
	}
	return http.StatusText(code)
}

func fetchModel(client *http.Client, base string) (*modelInfo, error) {
	resp, err := client.Get(base + "/v1/model")
	if err != nil {
		return nil, fmt.Errorf("fetching %s/v1/model: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/model: %s", resp.Status)
	}
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("decoding /v1/model: %w", err)
	}
	return &info, nil
}
