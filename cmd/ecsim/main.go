// Command ecsim runs one heuristic × filter configuration of the paper's
// experiment and reports per-trial and aggregate results.
//
// Usage:
//
//	ecsim -heuristic LL -filters en+rob -trials 50 -seed 20110913
//	ecsim -heuristic MECT -filters none -trials 10 -trace
//	ecsim -heuristic LL -listen :8080 -hold      # Prometheus + pprof endpoints
//	ecsim -heuristic LL -report report.json      # merged RunReport JSON
//	ecsim -heuristic LL -journal run.wal         # crash-safe: journal each trial
//	ecsim -heuristic LL -journal run.wal -resume # replay finished trials, run the rest
//	ecsim -heuristic LL -trial-timeout 2m        # quarantine trials that hang
//	ecsim -heuristic LL -trials 10 \
//	    -faults "mtbf=4000,repair=300,recovery=requeue,retries=2,backoff=60,deadline-aware" \
//	    -brownout -rel                           # resilience run
//
// Heuristics: SQ, MECT, LL, Random (paper §V) plus the extensions PLL,
// GreenLL, MaxRho, MinEEC. Filters: none, en, rob, en+rob (§V-F).
//
// SIGINT/SIGTERM cancel the run cleanly: in-flight trials stop at the next
// event batch, completed trials stay in the journal (if one is attached),
// and -report flushes a partial RunReport marked incomplete. Re-running
// with -resume picks up where the interrupted sweep left off, bit-identical
// to an uninterrupted run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	ectrace "repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		heuristic    = flag.String("heuristic", "LL", "heuristic: SQ, MECT, LL, Random, PLL, GreenLL, MaxRho, MinEEC")
		filters      = flag.String("filters", "en+rob", "filter variant: none, en, rob, en+rob")
		trials       = flag.Int("trials", 50, "number of simulation trials")
		seed         = flag.Uint64("seed", 0, "experiment seed (0 = paper default)")
		window       = flag.Int("window", 1000, "tasks per trial")
		budget       = flag.Float64("budget", 1, "energy budget scale (<=0 = unconstrained)")
		trace        = flag.Bool("trace", false, "print the per-task outcome log of trial 0")
		listen       = flag.String("listen", "", "serve /metrics, /metrics.json, /debug/vars, /debug/pprof on this address (e.g. :8080 or :0)")
		report       = flag.String("report", "", "write the merged RunReport JSON to this file ('-' = stdout)")
		hold         = flag.Bool("hold", false, "with -listen: block after the run so the endpoints stay up")
		faults       = flag.String("faults", "", "fault-injection spec, key=value list: mtbf, dist=exp|weibull, shape, repair, node-mtbf, recovery=drop|requeue, retries, backoff, deadline-aware")
		brownout     = flag.Bool("brownout", false, "replace the hard energy halt with the staged 90/95/98% brownout schedule")
		rel          = flag.Bool("rel", false, "append the availability-aware reliability filter to the chain")
		journal      = flag.String("journal", "", "write-ahead journal file: persist each completed trial before counting it done")
		resume       = flag.Bool("resume", false, "with -journal: replay trials already journaled instead of re-running them")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall-clock limit; a trial exceeding it is quarantined (0 = none)")
		traceOut     = flag.String("trace-out", "", "record a flight trace of one trial to this file (replay with ecreplay)")
		traceTrial   = flag.Int("trace-trial", 0, "with -trace-out: which trial to record")
	)
	flag.Parse()

	if *resume && *journal == "" {
		return fmt.Errorf("-resume requires -journal")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := core.DefaultSpec()
	spec.Trials = *trials
	spec.Workload.WindowSize = *window
	if *window != 1000 {
		spec.Workload.BurstLen = *window / 5
	}
	spec.BudgetScale = *budget
	if *seed != 0 {
		spec.Seed = *seed
	}
	spec.TrialTimeout = *trialTimeout

	variant, err := parseVariant(*filters)
	if err != nil {
		return err
	}

	sys, err := core.NewSystemContext(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(sys.Describe())

	if *journal != "" {
		j, err := sys.AttachJournal(*journal, *resume)
		if err != nil {
			return err
		}
		if *resume {
			fmt.Printf("journal %s: %d trial(s) on file; matching trials will be replayed\n", j.Path(), j.Len())
		} else {
			fmt.Printf("journal %s: %d trial(s) on file\n", j.Path(), j.Len())
		}
	}

	if *listen != "" {
		srv, err := metrics.Serve(*listen, sys.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics (pprof under /debug/pprof)\n", srv.Addr)
	}
	sys.SetProgress(func(done, total int, label string) {
		fmt.Fprintf(os.Stderr, "\r%s: trial %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	})

	var fspec core.FaultSpec
	if *faults != "" {
		if fspec, err = core.ParseFaultSpec(*faults); err != nil {
			return err
		}
	}
	var stages []core.BrownoutStage
	if *brownout {
		stages = core.DefaultBrownoutStages()
	}
	resilient := *faults != "" || *brownout || *rel

	var vr *core.VariantResult
	if resilient {
		h, herr := core.HeuristicByName(*heuristic)
		if herr != nil {
			return herr
		}
		fl := variant.Filters()
		tag := variant.String()
		if *rel {
			fl = append(fl, sched.ReliabilityFilter{})
			tag += "+rel"
		}
		m := &sched.Mapper{Heuristic: h, Filters: fl}
		vr, err = sys.Env().RunConfigured(m, tag, func(c *sim.Config) {
			c.Faults = fspec
			c.Brownout = stages
		})
	} else {
		vr, err = sys.RunHeuristic(*heuristic, variant)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr)
		return abort(sys, err, ctx, *report, *journal)
	}
	fmt.Printf("\n%s over %d trials:\n  missed deadlines: %s\n", vr.Label, spec.Trials, vr.Summary)
	fmt.Printf("  mean outcomes/trial: on-time %.1f, late %.1f, discarded %.1f, unfinished %.1f\n",
		vr.MeanOnTime, vr.MeanLate, vr.MeanDiscarded, vr.MeanUnfinished)
	fmt.Printf("  mean energy %.4g (budget %.4g), exhausted in %d/%d trials\n",
		vr.MeanEnergy, sys.Budget(), vr.ExhaustedTrials, spec.Trials)
	if resilient {
		fmt.Printf("  resilience: faults %.1f/trial, retries %.1f/trial, lost %.1f/trial, mean brownout stage %.1f\n",
			vr.MeanFaults, vr.MeanRetries, vr.MeanLost, vr.MeanBrownoutStage)
	}

	if *trace {
		var res *core.Result
		if resilient {
			res, err = sys.SimulateOnceResilient(*heuristic, variant, 0, fspec, stages)
		} else {
			res, err = sys.SimulateOnce(*heuristic, variant, 0)
		}
		if err != nil {
			return err
		}
		fmt.Printf("\ntrial 0 task log (%s):\n", res)
		for _, tr := range res.Traces {
			if tr.Mapped {
				fmt.Printf("  %-28s -> %-12s %-10s start=%8.1f finish=%8.1f deadline=%8.1f\n",
					tr.Task, tr.Assignment, tr.Outcome, tr.Start, tr.Finish, tr.Task.Deadline)
			} else {
				fmt.Printf("  %-28s -> %s\n", tr.Task, tr.Outcome)
			}
		}
	}

	if *traceOut != "" {
		if *rel {
			return fmt.Errorf("-trace-out cannot record -rel runs: the reliability filter is not part of the replayable configuration")
		}
		fc := experiment.FlightConfig{
			Heuristic: *heuristic,
			Filter:    variant.String(),
			Faults:    fspec,
			Brownout:  stages,
		}
		rec, err := ectrace.NewFile(*traceOut, nil)
		if err != nil {
			return err
		}
		_, res, err := sys.Env().FlightTrace(ctx, fc, *traceTrial, rec)
		if cerr := rec.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("\nflight trace of trial %d written to %s (%s)\n", *traceTrial, *traceOut, res)
	}

	rr := sys.Report()
	fmt.Printf("\n%s", rr.Render())
	if *report != "" {
		if err := writeReport(rr, *report); err != nil {
			return err
		}
	}

	if *hold && *listen != "" {
		fmt.Println("holding; interrupt to exit")
		<-ctx.Done()
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

// abort handles a failed run: when the failure came from cancellation it
// flushes a partial RunReport marked incomplete (if -report was given) and
// prints the resume hint, then returns the original error either way.
func abort(sys *core.System, runErr error, ctx context.Context, reportPath, journalPath string) error {
	if ctx.Err() == nil {
		return runErr
	}
	rr := sys.Report()
	rr.MarkIncomplete(runErr.Error())
	if reportPath != "" {
		if werr := writeReport(rr, reportPath); werr != nil {
			fmt.Fprintln(os.Stderr, "ecsim: flushing partial report:", werr)
		}
	}
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "interrupted; completed trials are journaled in %s — rerun with -resume to continue\n", journalPath)
	} else {
		fmt.Fprintln(os.Stderr, "interrupted; rerun with -journal FILE to make sweeps resumable")
	}
	return runErr
}

func writeReport(rr *core.RunReport, path string) error {
	data, err := rr.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func parseVariant(s string) (core.FilterVariant, error) {
	for _, v := range sched.AllFilterVariants() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown filter variant %q (none, en, rob, en+rob)", s)
}
