// Command ecsim runs one heuristic × filter configuration of the paper's
// experiment and reports per-trial and aggregate results.
//
// Usage:
//
//	ecsim -heuristic LL -filters en+rob -trials 50 -seed 20110913
//	ecsim -heuristic MECT -filters none -trials 10 -trace
//	ecsim -heuristic LL -listen :8080 -hold      # Prometheus + pprof endpoints
//	ecsim -heuristic LL -report report.json      # merged RunReport JSON
//
// Heuristics: SQ, MECT, LL, Random (paper §V) plus the extensions PLL,
// GreenLL, MaxRho, MinEEC. Filters: none, en, rob, en+rob (§V-F).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		heuristic = flag.String("heuristic", "LL", "heuristic: SQ, MECT, LL, Random, PLL, GreenLL, MaxRho, MinEEC")
		filters   = flag.String("filters", "en+rob", "filter variant: none, en, rob, en+rob")
		trials    = flag.Int("trials", 50, "number of simulation trials")
		seed      = flag.Uint64("seed", 0, "experiment seed (0 = paper default)")
		window    = flag.Int("window", 1000, "tasks per trial")
		budget    = flag.Float64("budget", 1, "energy budget scale (<=0 = unconstrained)")
		trace     = flag.Bool("trace", false, "print the per-task outcome log of trial 0")
		listen    = flag.String("listen", "", "serve /metrics, /metrics.json, /debug/vars, /debug/pprof on this address (e.g. :8080 or :0)")
		report    = flag.String("report", "", "write the merged RunReport JSON to this file ('-' = stdout)")
		hold      = flag.Bool("hold", false, "with -listen: block after the run so the endpoints stay up")
	)
	flag.Parse()

	spec := core.DefaultSpec()
	spec.Trials = *trials
	spec.Workload.WindowSize = *window
	if *window != 1000 {
		spec.Workload.BurstLen = *window / 5
	}
	spec.BudgetScale = *budget
	if *seed != 0 {
		spec.Seed = *seed
	}

	variant, err := parseVariant(*filters)
	if err != nil {
		return err
	}

	sys, err := core.NewSystem(spec)
	if err != nil {
		return err
	}
	fmt.Println(sys.Describe())

	if *listen != "" {
		srv, err := metrics.Serve(*listen, sys.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics (pprof under /debug/pprof)\n", srv.Addr)
	}
	sys.SetProgress(func(done, total int, label string) {
		fmt.Fprintf(os.Stderr, "\r%s: trial %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	})

	vr, err := sys.RunHeuristic(*heuristic, variant)
	if err != nil {
		return err
	}
	fmt.Printf("\n%s over %d trials:\n  missed deadlines: %s\n", vr.Label, spec.Trials, vr.Summary)
	fmt.Printf("  mean outcomes/trial: on-time %.1f, late %.1f, discarded %.1f, unfinished %.1f\n",
		vr.MeanOnTime, vr.MeanLate, vr.MeanDiscarded, vr.MeanUnfinished)
	fmt.Printf("  mean energy %.4g (budget %.4g), exhausted in %d/%d trials\n",
		vr.MeanEnergy, sys.Budget(), vr.ExhaustedTrials, spec.Trials)

	if *trace {
		res, err := sys.SimulateOnce(*heuristic, variant, 0)
		if err != nil {
			return err
		}
		fmt.Printf("\ntrial 0 task log (%s):\n", res)
		for _, tr := range res.Traces {
			if tr.Mapped {
				fmt.Printf("  %-28s -> %-12s %-10s start=%8.1f finish=%8.1f deadline=%8.1f\n",
					tr.Task, tr.Assignment, tr.Outcome, tr.Start, tr.Finish, tr.Task.Deadline)
			} else {
				fmt.Printf("  %-28s -> %s\n", tr.Task, tr.Outcome)
			}
		}
	}

	rr := sys.Report()
	fmt.Printf("\n%s", rr.Render())
	if *report != "" {
		data, err := rr.JSON()
		if err != nil {
			return err
		}
		if *report == "-" {
			fmt.Println(string(data))
		} else {
			if err := os.WriteFile(*report, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *report)
		}
	}

	if *hold && *listen != "" {
		fmt.Println("holding; interrupt to exit")
		select {}
	}
	return nil
}

func parseVariant(s string) (core.FilterVariant, error) {
	for _, v := range sched.AllFilterVariants() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown filter variant %q (none, en, rob, en+rob)", s)
}
