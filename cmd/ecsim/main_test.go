package main

import (
	"testing"

	"repro/internal/sched"
)

func TestParseVariant(t *testing.T) {
	cases := map[string]sched.FilterVariant{
		"none":   sched.NoFilter,
		"en":     sched.EnergyOnly,
		"rob":    sched.RobustnessOnly,
		"en+rob": sched.EnergyAndRobustness,
	}
	for in, want := range cases {
		got, err := parseVariant(in)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Error("expected error for unknown variant")
	}
}
