// Command ecreplay re-drives the simulator from a recorded flight trace
// and verifies the replay is bit-identical to the record.
//
// Usage:
//
//	ecsim -heuristic LL -trials 2 -trace-out flight.jsonl
//	ecreplay flight.jsonl                    # replay + verify
//	ecreplay -out replayed.jsonl flight.jsonl
//	ecreplay -calibrate flight.jsonl         # also print the calibration table
//	ecreplay -summary flight.jsonl           # inspect without replaying
//
// The trace header carries everything a replay needs — the experiment spec
// (to rebuild the model, hash-checked), the engine configuration, and the
// (seed, trial) address of the decision stream — while the task stream
// itself (arrivals, types, deadlines, execution quantiles) is taken
// verbatim from the recorded rows, with no distribution sampling. Because
// the simulator is deterministic given (config, trial, decisions), every
// row, event, summary field, and metric sample of the replay must equal
// the record bit for bit; any divergence is reported and the command exits
// nonzero. Server traces (kind "serve") do not replay — they are driven by
// wall-clock admission — but -summary and -calibrate work on them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/experiment"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "", "write the replayed trace to this file (byte-comparable with the input)")
		calibrate = flag.Bool("calibrate", false, "print the predicted-ρ vs observed on-time calibration table")
		burstLen  = flag.Int("burst-len", 0, "burst length for calibration regimes (0 = take it from the trace header spec)")
		summary   = flag.Bool("summary", false, "print the recorded trace's summary and exit without replaying")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: ecreplay [flags] <flight-trace.jsonl>")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rec, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	h := rec.Header
	fmt.Printf("trace %s: kind=%s policy=%s seed=%d trial=%d model=%s rows=%d events=%d\n",
		flag.Arg(0), h.Kind, h.Policy, h.Seed, h.Trial, h.ModelHash, len(rec.Rows), len(rec.Events))
	if s := rec.Summary; s != nil {
		fmt.Printf("recorded: window=%d on-time=%d missed=%d late=%d discarded=%d unfinished=%d energy=%.6g makespan=%.6g\n",
			s.Window, s.OnTime, s.Missed, s.Late, s.Discarded, s.Unfinished, s.EnergyConsumed, s.Makespan)
	}

	if *calibrate {
		bl := *burstLen
		if bl == 0 {
			bl = burstLenFromSpec(rec)
		}
		cal, err := trace.Calibrate(rec, bl)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(experiment.CalibrationTable(cal).Render())
		fmt.Println()
	}
	if *summary {
		return nil
	}

	rr, err := experiment.ReplayTrace(ctx, rec)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := trace.WriteFile(*out, rr.Trace); err != nil {
			return err
		}
		fmt.Printf("replayed trace written to %s\n", *out)
	}
	if len(rr.Diff) > 0 {
		fmt.Fprintf(os.Stderr, "REPLAY DIVERGED: %d mismatch(es)\n", len(rr.Diff))
		for _, d := range rr.Diff {
			fmt.Fprintln(os.Stderr, "  ", d)
		}
		return fmt.Errorf("replay is not bit-identical to the record")
	}
	fmt.Printf("replay bit-identical: %d rows, %d events, summary and metrics match\n",
		len(rr.Trace.Rows), len(rr.Trace.Events))
	return nil
}

// burstLenFromSpec pulls the workload burst length out of the header spec
// so calibration regimes (burst/lull) match the generator's structure.
func burstLenFromSpec(t *trace.Trace) int {
	if len(t.Header.Spec) == 0 {
		return 0
	}
	var spec experiment.Spec
	if err := json.Unmarshal(t.Header.Spec, &spec); err != nil {
		return 0
	}
	return spec.Workload.BurstLen
}
