// Command ecgen generates and inspects the simulation's machine and
// workload models: the heterogeneous cluster (topology, P-state frequency
// and power profiles, supply efficiencies) and the derived workload
// quantities (t_avg, λ_eq, deadline structure, energy budget).
//
// Usage:
//
//	ecgen                      # summarize the paper-seed instance
//	ecgen -seed 7 -json c.json # write the cluster spec as JSON
//	ecgen -pmf 3:0             # dump the exec-time pmfs of type 3 on node 0
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/randx"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Uint64("seed", 0, "generation seed (0 = paper default)")
		jsonPath  = flag.String("json", "", "write the cluster spec as JSON to this file")
		pmfSpec   = flag.String("pmf", "", "dump execution-time pmfs for \"type:node\"")
		modelPath = flag.String("model", "", "write the full workload model (cluster + pmf tables) as JSON to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := core.DefaultSpec()
	if *seed != 0 {
		spec.Seed = *seed
	}
	root := randx.NewStream(spec.Seed)
	c, err := cluster.Generate(root.Child("cluster"), spec.ClusterGen)
	if err != nil {
		return err
	}
	fmt.Print(c.Summary())

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := c.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	// pmf-table construction is the one slow stage; honor an interrupt
	// that arrived while the cluster summary was printing.
	if err := ctx.Err(); err != nil {
		return err
	}
	model, err := workload.BuildModel(root.Child("model"), c, spec.Workload)
	if err != nil {
		return err
	}
	fmt.Printf("\nworkload: %d task types, window %d\n", spec.Workload.TaskTypes, spec.Workload.WindowSize)
	fmt.Printf("  t_avg = %.1f (avg exec over types, nodes, P-states)\n", model.TAvg())
	fmt.Printf("  λ_eq  = %.5f; λ_fast = %.5f; λ_slow = %.5f\n",
		model.EquilibriumRate(), model.FastRate(), model.SlowRate())
	fmt.Printf("  ζ_max = %.4g (t_avg × p_avg × window)\n", model.DefaultEnergyBudget())

	if *modelPath != "" {
		f, err := os.Create(*modelPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := model.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *modelPath)
	}

	if *pmfSpec != "" {
		var ti, ni int
		if _, err := fmt.Sscanf(strings.Replace(*pmfSpec, ":", " ", 1), "%d %d", &ti, &ni); err != nil {
			return fmt.Errorf("bad -pmf %q, want \"type:node\"", *pmfSpec)
		}
		if ti < 0 || ti >= spec.Workload.TaskTypes || ni < 0 || ni >= c.N() {
			return fmt.Errorf("-pmf %q out of range", *pmfSpec)
		}
		fmt.Printf("\nexecution-time pmfs for type %d on node %d:\n", ti, ni)
		for _, ps := range cluster.AllPStates() {
			p := model.ExecPMF(ti, ni, ps)
			fmt.Printf("  %v: mean=%.1f sd=%.1f support=[%.1f, %.1f] impulses=%d\n",
				ps, p.Mean(), p.StdDev(), p.Min(), p.Max(), p.Len())
		}
	}
	return nil
}
