// Command ecserve runs the online allocation service: the paper's
// immediate-mode mapper behind an HTTP/JSON API, with bounded admission,
// deadline-aware load shedding, per-node circuit breakers, energy-budget
// brownout, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	ecserve -addr :9090                              # serve the API
//	ecserve -addr :9090 -listen :8080                # + Prometheus/pprof
//	ecserve -heuristic LL -filters en+rob -budget 1  # paper policy, ζ_max
//	ecserve -faults "mtbf=4000,repair=300,recovery=requeue,retries=2,backoff=60,deadline-aware" -rel
//	ecserve -brownout -budget 1                      # staged degradation + admission shedding
//	ecserve -scale 5000 -queue 512 -timeout 2s       # virtual time at 5000 units/s
//
// Submit a task:
//
//	curl -s -X POST localhost:9090/v1/tasks -d '{"type": 7}'
//
// On SIGINT/SIGTERM the server stops admitting (503), decides everything
// already queued, fast-forwards in-flight work to completion, prints the
// drain report (optionally -report JSON), and exits 0 only if no task was
// orphaned.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", ":9090", "HTTP address for the allocation API")
		listen     = flag.String("listen", "", "serve /metrics, /metrics.json, /debug/vars, /debug/pprof on this address")
		heuristic  = flag.String("heuristic", "LL", "heuristic: SQ, MECT, LL, Random, PLL, GreenLL, MaxRho, MinEEC")
		filters    = flag.String("filters", "en+rob", "filter variant: none, en, rob, en+rob")
		rel        = flag.Bool("rel", false, "append the availability-aware reliability filter to the chain")
		seed       = flag.Uint64("seed", 0, "instance seed (0 = paper default); shared with ecsim/ecload")
		budget     = flag.Float64("budget", 1, "energy budget scale of ζ_max (<=0 = unconstrained)")
		scale      = flag.Float64("scale", 1000, "virtual time units per wall second")
		queueCap   = flag.Int("queue", 256, "admission queue bound; beyond it requests get 429 + Retry-After")
		reqTimeout = flag.Duration("timeout", 5*time.Second, "per-request admission timeout (504 past it)")
		horizon    = flag.Int("horizon", 0, "energy fair-share horizon in tasks (0 = model window)")
		faults     = flag.String("faults", "", "fault-injection spec, key=value list: mtbf, dist=exp|weibull, shape, repair, node-mtbf, recovery=drop|requeue, retries, backoff, deadline-aware")
		brownout   = flag.Bool("brownout", false, "staged 90/95/98% brownout; the deepest stage also sheds admissions")
		exactRho   = flag.Bool("exactrho", false, "evaluate candidate ρ by direct double sum instead of the compacted completion PMF (faster, not bit-identical to the paper pipeline)")
		sparsePMF  = flag.Bool("sparsepmf", false, "force the original sparse impulse pipeline instead of the fixed-grid lattice fast path (reproduces the paper pipeline bit-for-bit)")
		grace      = flag.Duration("drain-grace", 10*time.Second, "wall-clock bound on the shutdown drain")
		report     = flag.String("report", "", "write the final drain report JSON to this file ('-' = stdout)")
		flight     = flag.String("flight", "", "record a per-task flight trace (decision audit + predictions + outcomes) to this file; calibrate with ecreplay -calibrate")
		walBase    = flag.String("wal", "", "write-ahead admission log base path (files are <wal>.<incarnation>); enables durable serving")
		ckptPath   = flag.String("checkpoint", "", "engine checkpoint path (default <wal>.ckpt when -wal is set)")
		ckptEvery  = flag.Duration("checkpoint-every", 5*time.Second, "wall-clock period between automatic checkpoints")
		doRecover  = flag.Bool("recover", false, "recover from the checkpoint + WAL before serving (requires -wal)")
		drainNow   = flag.Bool("drain-now", false, "with -recover: recover, drain deterministically without serving, print the report, exit")
		tenantSpec = flag.String("tenants", "", "tenant-spec JSON file: arm multi-tenant admission control (per-tenant token buckets, queue shares, SLO-weighted shedding, abuse quarantine) from the same file ecload generates traffic from")
		shards     = flag.Int("shards", 0, "split serving into N engine shards behind the router tier (0 = classic single-engine path; 1 = one-shard router, bit-identical to 0 on the same seed)")
		placement  = flag.String("placement", "round-robin", "shard placement policy: round-robin, least-loaded, robustness")
		chaos      = flag.Bool("chaos", false, "with -shards: expose POST /v1/chaos/kill?shard=N, the shard kill switch for chaos testing")
		probeEvery = flag.Duration("probe-every", 500*time.Millisecond, "with -shards: shard health-probe period (0 disables the prober)")
		rebalEvery = flag.Duration("rebalance-every", 5*time.Second, "with -shards: energy sub-budget rebalance period (0 disables; death-time reclamation always runs)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := core.DefaultSpec()
	spec.BudgetScale = *budget
	if *seed != 0 {
		spec.Seed = *seed
	}
	model, zeta, err := core.BuildServeModel(spec)
	if err != nil {
		return err
	}

	h, err := core.HeuristicByName(*heuristic)
	if err != nil {
		return err
	}
	variant, err := parseVariant(*filters)
	if err != nil {
		return err
	}
	fl := variant.Filters()
	tag := variant.String()
	if *rel {
		fl = append(fl, sched.ReliabilityFilter{})
		tag += "+rel"
	}

	var fspec core.FaultSpec
	if *faults != "" {
		if fspec, err = core.ParseFaultSpec(*faults); err != nil {
			return err
		}
	}
	var stages []energy.BrownoutStage
	if *brownout {
		stages = energy.DefaultServeBrownoutStages()
	}

	reg := metrics.NewRegistry()
	mapper := &sched.Mapper{Heuristic: h, Filters: fl}
	var fliRec *trace.File
	var fli *trace.Flight
	if *flight != "" && *shards == 0 {
		// The recorder's counters live in the server registry on purpose:
		// rows/drops/flushes are part of this process's observability. Serve
		// traces feed the calibration stage, not the bit-identity replay
		// gate, so recorder-counter skew is harmless here.
		if fliRec, err = trace.NewFile(*flight, reg); err != nil {
			return err
		}
		zenc := zeta
		if math.IsInf(zenc, 1) {
			zenc = -1
		}
		fli = trace.NewFlight(model, trace.Header{
			Kind:      trace.KindServe,
			ModelHash: model.Hash(),
			Seed:      spec.Seed,
			Policy:    mapper.Name(),
			Budget:    zenc,
		}, fliRec)
	}
	var obs sim.Observer
	if fli != nil {
		obs = fli
	}
	cfg := server.Config{
		Model:          model,
		Mapper:         mapper,
		Budget:         zeta,
		Observer:       obs,
		TimeScale:      *scale,
		QueueCap:       *queueCap,
		RequestTimeout: *reqTimeout,
		Horizon:        *horizon,
		Faults:         fspec,
		Brownout:       stages,
		Metrics:        reg,
		Seed:           spec.Seed,
		DrainGrace:     *grace,
		ExactRho:       *exactRho,
		SparsePMF:      *sparsePMF,
	}
	if *drainNow && !*doRecover {
		return fmt.Errorf("-drain-now requires -recover")
	}
	if *doRecover && *walBase == "" {
		return fmt.Errorf("-recover requires -wal")
	}
	if *walBase != "" {
		cfg.WALPath = *walBase
		cfg.CheckpointPath = *ckptPath
		if cfg.CheckpointPath == "" {
			cfg.CheckpointPath = *walBase + ".ckpt"
		}
		cfg.CheckpointEvery = *ckptEvery
	}
	if *tenantSpec != "" {
		data, rerr := os.ReadFile(*tenantSpec)
		if rerr != nil {
			return rerr
		}
		tsp, terr := workload.ParseTenantSpec(data)
		if terr != nil {
			return terr
		}
		cfg.Tenants = &server.TenantConfig{Quotas: server.QuotasFromSpec(tsp, model.EquilibriumRate())}
	}
	if len(fspec.ShardKills) > 0 && *shards == 0 {
		return fmt.Errorf("faults: shard-kill requires -shards")
	}
	if *chaos && *shards == 0 {
		return fmt.Errorf("-chaos requires -shards")
	}

	if *shards > 0 {
		return runSharded(ctx, shardedRun{
			cfg:        cfg,
			n:          *shards,
			placement:  *placement,
			chaos:      *chaos,
			probeEvery: *probeEvery,
			rebalEvery: *rebalEvery,
			addr:       *addr,
			listen:     *listen,
			flight:     *flight,
			report:     *report,
			doRecover:  *doRecover,
			drainNow:   *drainNow,
			grace:      *grace,
			reg:        reg,
			zeta:       zeta,
			scale:      *scale,
			heuristic:  *heuristic,
			tag:        tag,
			faults:     *faults,
			walBase:    *walBase,
			ckptEvery:  *ckptEvery,
		})
	}

	// Boot order under recovery: Prepare (engine exists, reports itself
	// recovering), bind the API (readyz answers 503 "recovering"), replay
	// the log, then Start. A client probing readyz sees the truth the whole
	// way through.
	eng, err := server.Prepare(cfg)
	if err != nil {
		return err
	}

	if *drainNow {
		// Deterministic offline recovery: replay, drain inline with no live
		// clock or listener in the path, report, exit. Running this twice on
		// the same WAL + checkpoint must produce bit-identical reports.
		rrep, rerr := eng.RecoverFrom()
		if rerr != nil {
			return rerr
		}
		printRecovery(rrep)
		if derr := eng.DrainNow(); derr != nil {
			fmt.Fprintln(os.Stderr, "ecserve:", derr)
		}
		return finish(eng, fli, fliRec, reg, *flight, *report)
	}

	api := server.NewServer(eng)
	apiAddr, shutdownAPI, err := api.ListenAndServe(*addr)
	if err != nil {
		return err
	}
	if *doRecover {
		rrep, rerr := eng.RecoverFrom()
		if rerr != nil {
			return rerr
		}
		printRecovery(rrep)
	}
	if err := eng.Start(); err != nil {
		return err
	}
	fmt.Printf("ecserve: %s+%s on http://%s/v1/tasks (seed %d, scale %gx", *heuristic, tag, apiAddr, spec.Seed, *scale)
	if !math.IsInf(zeta, 1) {
		fmt.Printf(", ζ_max %.4g", zeta)
	}
	fmt.Println(")")
	if win := eng.IdleEnergyWindow(); !math.IsInf(win, 1) {
		// The budget drains from idle draw alone, exactly like the paper's
		// fixed-window trials: this service has a finite lifetime. Say so up
		// front instead of surprising the operator with 503s.
		fmt.Printf("ecserve: energy window ≤ %.0f vt (~%.0fs wall at this scale); then the cluster halts\n",
			win, win / *scale)
	}
	if *faults != "" {
		fmt.Printf("ecserve: fault injection live: %s\n", *faults)
	}
	if *walBase != "" {
		fmt.Printf("ecserve: durable: wal %s.* checkpoint %s every %s\n", *walBase, cfg.CheckpointPath, *ckptEvery)
	}
	if cfg.Tenants != nil {
		fmt.Printf("ecserve: multi-tenant admission control armed for %d tenant(s)\n", len(cfg.Tenants.Quotas))
	}

	if *listen != "" {
		msrv, merr := metrics.Serve(*listen, reg.Snapshot)
		if merr != nil {
			return merr
		}
		defer msrv.Close()
		fmt.Printf("ecserve: metrics on http://%s/metrics (pprof under /debug/pprof)\n", msrv.Addr)
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "\necserve: draining (new requests get 503)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace+5*time.Second)
	defer cancel()
	// Drain and HTTP shutdown run concurrently: the drain answers the
	// Submit calls blocked inside in-flight handlers, which lets Shutdown's
	// wait complete.
	drainErr := make(chan error, 1)
	go func() { drainErr <- eng.Drain(drainCtx) }()
	_ = shutdownAPI(drainCtx)
	if derr := <-drainErr; derr != nil {
		fmt.Fprintln(os.Stderr, "ecserve:", derr)
	}

	return finish(eng, fli, fliRec, reg, *flight, *report)
}

// shardedRun carries the flag surface into the router-tier serving path.
type shardedRun struct {
	cfg                    server.Config
	n                      int
	placement              string
	chaos                  bool
	probeEvery, rebalEvery time.Duration
	addr, listen           string
	flight, report         string
	doRecover, drainNow    bool
	grace                  time.Duration
	reg                    *metrics.Registry
	zeta, scale            float64
	heuristic, tag, faults string
	walBase                string
	ckptEvery              time.Duration
}

// runSharded serves through the router tier: N engine shards with disjoint
// node slices, energy sub-budgets carved from ζ_max, per-shard WAL
// incarnations (<wal>.s<i>), and — with -flight — per-shard flight traces
// (<flight>.s<i>; the plain path at -shards 1, so the one-shard router run
// is file-for-file comparable to the single-engine path).
func runSharded(ctx context.Context, o shardedRun) error {
	place, err := server.PlacementByName(o.placement)
	if err != nil {
		return err
	}
	flights := make([]*trace.Flight, o.n)
	fliRecs := make([]*trace.File, o.n)
	fliPaths := make([]string, o.n)
	var shapeErr error
	rcfg := server.RouterConfig{
		Placement:      place,
		ProbeEvery:     o.probeEvery,
		RebalanceEvery: o.rebalEvery,
		Metrics:        o.reg,
		Shape: func(id int, cfg *server.Config) {
			if o.flight == "" || shapeErr != nil {
				return
			}
			path := o.flight
			if o.n > 1 {
				path = fmt.Sprintf("%s.s%d", o.flight, id)
			}
			rec, ferr := trace.NewFile(path, o.reg)
			if ferr != nil {
				shapeErr = ferr
				return
			}
			zenc := cfg.Budget
			if zenc == 0 || math.IsInf(zenc, 1) {
				zenc = -1
			}
			fl := trace.NewFlight(cfg.Model, trace.Header{
				Kind:      trace.KindServe,
				ModelHash: cfg.Model.Hash(),
				Seed:      cfg.Seed,
				Policy:    cfg.Mapper.Name(),
				Budget:    zenc,
			}, rec)
			cfg.Observer = fl
			flights[id], fliRecs[id], fliPaths[id] = fl, rec, path
		},
	}
	rt, err := server.NewSharded(o.cfg, o.n, rcfg)
	if err != nil {
		return err
	}
	if shapeErr != nil {
		return shapeErr
	}

	if o.drainNow {
		// Deterministic offline recovery across every shard, then the
		// shared-clock orchestrated drain. Running this twice on the same
		// WAL set must produce bit-identical per-shard traces and reports.
		reps, rerr := rt.RecoverAll()
		for _, r := range reps {
			printRecovery(r)
		}
		if rerr != nil {
			return rerr
		}
		if derr := rt.DrainAllNow(); derr != nil {
			fmt.Fprintln(os.Stderr, "ecserve:", derr)
		}
		return finishRouter(rt, flights, fliRecs, fliPaths, o.reg, o.report)
	}

	api := server.NewRouterServer(rt, o.chaos)
	apiAddr, shutdownAPI, err := api.ListenAndServe(o.addr)
	if err != nil {
		return err
	}
	if o.doRecover {
		reps, rerr := rt.RecoverAll()
		for _, r := range reps {
			printRecovery(r)
		}
		if rerr != nil {
			return rerr
		}
	}
	if err := rt.Start(); err != nil {
		return err
	}
	fmt.Printf("ecserve: %s+%s on http://%s/v1/tasks (seed %d, scale %gx, %d shard(s), placement %s",
		o.heuristic, o.tag, apiAddr, o.cfg.Seed, o.scale, o.n, rt.Placement())
	if !math.IsInf(o.zeta, 1) {
		fmt.Printf(", ζ_max %.4g", o.zeta)
	}
	fmt.Println(")")
	for _, st := range rt.ShardStatuses() {
		line := fmt.Sprintf("ecserve: shard %d: nodes %v (%d cores)", st.ID, st.Nodes, st.Cores)
		if st.Budget > 0 {
			line += fmt.Sprintf(", sub-budget %.4g", st.Budget)
		}
		fmt.Println(line)
	}
	if o.faults != "" {
		fmt.Printf("ecserve: fault injection live: %s\n", o.faults)
	}
	if o.walBase != "" {
		fmt.Printf("ecserve: durable: per-shard wal %s.s<i>.* checkpoints every %s\n", o.walBase, o.ckptEvery)
	}
	if o.chaos {
		fmt.Printf("ecserve: chaos kill switch armed: POST http://%s/v1/chaos/kill?shard=N\n", apiAddr)
	}

	if o.listen != "" {
		msrv, merr := metrics.Serve(o.listen, o.reg.Snapshot)
		if merr != nil {
			return merr
		}
		defer msrv.Close()
		fmt.Printf("ecserve: metrics on http://%s/metrics (pprof under /debug/pprof)\n", msrv.Addr)
	}

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "\necserve: draining (new requests get 503)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.grace+5*time.Second)
	defer cancel()
	drainErr := make(chan error, 1)
	go func() { drainErr <- rt.Drain(drainCtx) }()
	_ = shutdownAPI(drainCtx)
	if derr := <-drainErr; derr != nil {
		fmt.Fprintln(os.Stderr, "ecserve:", derr)
	}
	return finishRouter(rt, flights, fliRecs, fliPaths, o.reg, o.report)
}

// finishRouter prints the aggregated drain report, flushes every per-shard
// flight trace with that shard's own summary, writes the report file, and
// turns any orphaned task into a non-zero exit.
func finishRouter(rt *server.Router, flights []*trace.Flight, recs []*trace.File, paths []string, reg *metrics.Registry, reportPath string) error {
	rep := rt.FinalReport()
	fmt.Print(rep.Render())
	for i, sh := range rt.Shards() {
		if flights[i] == nil {
			continue
		}
		st := sh.Engine().Stats()
		flights[i].Finish(trace.Summary{
			Window:         int(st.Admitted),
			OnTime:         int(st.OnTime),
			Late:           int(st.Late),
			Mapped:         int(st.Mapped),
			EnergyConsumed: st.EnergyConsumed,
			Makespan:       st.VirtualNow,
			Faults:         int(st.Faults),
			Retries:        int(st.Retries),
			LostToFailure:  int(st.Failed),
			BrownoutStage:  st.BrownoutStage,
		}, reg.Snapshot())
		if err := recs[i].Close(); err != nil {
			return err
		}
		fmt.Printf("ecserve: flight trace written to %s\n", paths[i])
	}
	if reportPath != "" {
		if err := writeReport(rep, reportPath); err != nil {
			return err
		}
	}
	if rep.Orphaned != 0 || !rep.Balanced {
		return fmt.Errorf("drain left %d orphaned task(s) (balanced=%v)", rep.Orphaned, rep.Balanced)
	}
	return nil
}

// finish prints the drain report, flushes the flight trace, writes the
// report file, and turns any orphaned task into a non-zero exit.
func finish(eng *server.Engine, fli *trace.Flight, fliRec *trace.File, reg *metrics.Registry, flightPath, reportPath string) error {
	rep := eng.FinalReport()
	fmt.Print(rep.Render())
	if fli != nil {
		st := rep.Stats
		fli.Finish(trace.Summary{
			Window:         int(st.Admitted),
			OnTime:         int(st.OnTime),
			Late:           int(st.Late),
			Mapped:         int(st.Mapped),
			EnergyConsumed: st.EnergyConsumed,
			Makespan:       st.VirtualNow,
			Faults:         int(st.Faults),
			Retries:        int(st.Retries),
			LostToFailure:  int(st.Failed),
			BrownoutStage:  st.BrownoutStage,
		}, reg.Snapshot())
		if err := fliRec.Close(); err != nil {
			return err
		}
		fmt.Printf("ecserve: flight trace written to %s\n", flightPath)
	}
	if reportPath != "" {
		if err := writeReport(rep, reportPath); err != nil {
			return err
		}
	}
	if rep.Orphaned != 0 || !rep.Balanced {
		return fmt.Errorf("drain left %d orphaned task(s) (balanced=%v)", rep.Orphaned, rep.Balanced)
	}
	return nil
}

// printRecovery narrates one RecoverFrom pass on stderr.
func printRecovery(r *server.RecoveryReport) {
	src := "genesis WAL"
	if r.FromCheckpoint {
		src = fmt.Sprintf("checkpoint (%d records) + WAL suffix", r.CheckpointRecords)
	}
	fmt.Fprintf(os.Stderr, "ecserve: recovered from %s: replayed %d, re-decided %d, danglers %d, vt %.1f, incarnation %d\n",
		src, r.ReplayedRecords, r.ReDecided, r.Danglers, r.VirtualNow, r.Incarnation)
	if r.TornTail {
		fmt.Fprintf(os.Stderr, "ecserve: torn WAL tail dropped at byte offset %d\n", r.TornOffset)
	}
}

func writeReport(rep *server.FinalReport, path string) error {
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func parseVariant(s string) (core.FilterVariant, error) {
	for _, v := range sched.AllFilterVariants() {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown filter variant %q (none, en, rob, en+rob)", s)
}
