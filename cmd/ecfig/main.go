// Command ecfig regenerates the paper's evaluation artifacts: Figures 2–6
// as ASCII box-and-whiskers plots (with optional CSV of every trial
// sample), the §VII summary-improvement table, and the ablation tables
// DESIGN.md defines.
//
// Usage:
//
//	ecfig -fig 6                      # one figure
//	ecfig -all                        # figures 2–6 + summary table
//	ecfig -table summary              # §VII improvement table
//	ecfig -table zmul|rthresh|budget|arrivals|priority   # ablations
//	ecfig -table parking|powercv|cancel                  # §VIII extension studies
//	ecfig -table mtbf|brownout                           # resilience studies
//	ecfig -fig 2 -csv fig2.csv        # also write per-trial samples
//	ecfig -trials 10                  # reduced trial count for quick looks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecfig:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (2-6)")
		table  = flag.String("table", "", "table to regenerate: summary, significance, zmul, rthresh, budget, arrivals, priority, parking, powercv, cancel, central, classes, mtbf, brownout")
		all    = flag.Bool("all", false, "regenerate figures 2-6 and the summary table")
		trials = flag.Int("trials", 50, "number of simulation trials")
		seed   = flag.Uint64("seed", 0, "experiment seed (0 = paper default)")
		width  = flag.Int("width", 72, "box plot width in characters")
		csv    = flag.String("csv", "", "write per-trial CSV for the selected figure to this file")
		report = flag.String("report", "", "write the merged RunReport JSON to this file ('-' = stdout)")
		quiet  = flag.Bool("quiet", false, "suppress the per-trial progress line on stderr")
	)
	flag.Parse()

	spec := core.DefaultSpec()
	spec.Trials = *trials
	if *seed != 0 {
		spec.Seed = *seed
	}

	if !*all && *fig == 0 && *table == "" {
		flag.Usage()
		return fmt.Errorf("pick -fig N, -table NAME, or -all")
	}

	sys, err := core.NewSystem(spec)
	if err != nil {
		return err
	}
	fmt.Println(sys.Describe())
	fmt.Println()

	if !*quiet {
		sys.SetProgress(func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "\r%s: trial %d/%d", label, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	err = func() error {
		if *all {
			for n := 2; n <= 6; n++ {
				if err := printFigure(sys, n, *width, ""); err != nil {
					return err
				}
			}
			return printTable(sys, spec, "summary")
		}
		if *fig != 0 {
			return printFigure(sys, *fig, *width, *csv)
		}
		return printTable(sys, spec, *table)
	}()
	if err != nil {
		return err
	}

	if *report != "" {
		data, jerr := sys.Report().JSON()
		if jerr != nil {
			return jerr
		}
		if *report == "-" {
			fmt.Println(string(data))
		} else {
			if err := os.WriteFile(*report, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *report)
		}
	}
	return nil
}

func printFigure(sys *core.System, n, width int, csvPath string) error {
	f, err := sys.Figure(n)
	if err != nil {
		return err
	}
	out, err := f.Render(width)
	if err != nil {
		return err
	}
	fmt.Println(out)
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(f.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

func printTable(sys *core.System, spec core.Spec, name string) error {
	env := sys.Env()
	var tab *experiment.Table
	var err error
	switch name {
	case "summary":
		tab, err = sys.SummaryTable()
	case "zmul":
		tab, err = env.AblateZetaMul(sched.LightestLoad{}, []float64{0.6, 0.8, 1.0, 1.2, 1.4})
	case "rthresh":
		tab, err = env.AblateRhoThresh(sched.LightestLoad{}, []float64{0.25, 0.5, 0.75, 0.9})
	case "budget":
		tab, err = env.AblateBudget(sched.LightestLoad{}, []float64{0.6, 0.8, 1.0, 1.2, 1.5, -1})
	case "arrivals":
		tab, err = experiment.AblateArrivals(spec, sched.LightestLoad{})
	case "priority":
		tab, err = env.PriorityStudy([]workload.PriorityClass{
			{Weight: 4, Fraction: 0.25},
			{Weight: 1, Fraction: 0.75},
		})
	case "parking":
		tab, err = env.ParkingStudy(sched.LightestLoad{}, []float64{0.05, 0.25, 1.0, 4.0})
	case "powercv":
		tab, err = env.PowerNoiseStudy(sched.LightestLoad{}, []float64{0.1, 0.25, 0.5})
	case "cancel":
		tab, err = env.CancellationStudy(sched.LightestLoad{})
	case "significance":
		tab, err = env.SignificanceTable()
	case "central":
		tab, err = env.CentralQueueStudy()
	case "mtbf":
		tab, err = env.MTBFStudy(sched.LightestLoad{}, []float64{16, 8, 4, 2})
	case "brownout":
		tab, err = env.BrownoutStudy(sched.LightestLoad{}, []float64{0.7, 0.85, 1.0})
	case "classes":
		tab, err = experiment.ClassStudy(spec, workload.PaperClassMix())
	default:
		return fmt.Errorf("unknown table %q", name)
	}
	if err != nil {
		return err
	}
	fmt.Println(tab.Render())
	return nil
}
