// Command ecfig regenerates the paper's evaluation artifacts: Figures 2–6
// as ASCII box-and-whiskers plots (with optional CSV of every trial
// sample), the §VII summary-improvement table, and the ablation tables
// DESIGN.md defines.
//
// Usage:
//
//	ecfig -fig 6                      # one figure
//	ecfig -all                        # figures 2–6 + summary table
//	ecfig -table summary              # §VII improvement table
//	ecfig -table zmul|rthresh|budget|arrivals|priority   # ablations
//	ecfig -table parking|powercv|cancel                  # §VIII extension studies
//	ecfig -table mtbf|brownout                           # resilience studies
//	ecfig -table fairness -trace run.trace               # per-tenant fairness from a flight trace
//	ecfig -fig 2 -csv fig2.csv        # also write per-trial samples
//	ecfig -trials 10                  # reduced trial count for quick looks
//	ecfig -all -journal figs.wal      # crash-safe: journal every trial
//	ecfig -all -journal figs.wal -resume   # continue an interrupted sweep
//
// SIGINT/SIGTERM cancel the sweep cleanly; with -journal the completed
// trials survive, and -resume replays them bit-identically on the next run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecfig:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig          = flag.Int("fig", 0, "figure number to regenerate (2-6)")
		table        = flag.String("table", "", "table to regenerate: summary, significance, zmul, rthresh, budget, arrivals, priority, parking, powercv, cancel, central, classes, mtbf, brownout, calibration, fairness")
		all          = flag.Bool("all", false, "regenerate figures 2-6 and the summary table")
		trials       = flag.Int("trials", 50, "number of simulation trials")
		seed         = flag.Uint64("seed", 0, "experiment seed (0 = paper default)")
		width        = flag.Int("width", 72, "box plot width in characters")
		csv          = flag.String("csv", "", "write per-trial CSV for the selected figure to this file")
		report       = flag.String("report", "", "write the merged RunReport JSON to this file ('-' = stdout)")
		quiet        = flag.Bool("quiet", false, "suppress the per-trial progress line on stderr")
		journal      = flag.String("journal", "", "write-ahead journal file: persist each completed trial before counting it done")
		resume       = flag.Bool("resume", false, "with -journal: replay trials already journaled instead of re-running them")
		trialTimeout = flag.Duration("trial-timeout", 0, "per-trial wall-clock limit; a trial exceeding it is quarantined (0 = none)")
		traceFile    = flag.String("trace", "", "flight-trace file for -table fairness")
	)
	flag.Parse()

	if *resume && *journal == "" {
		return fmt.Errorf("-resume requires -journal")
	}

	// The fairness table summarizes a recorded flight trace per tenant; it
	// needs no simulation sweep, so handle it before the System boots.
	if *table == "fairness" {
		return printFairness(*traceFile)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	spec := core.DefaultSpec()
	spec.Trials = *trials
	if *seed != 0 {
		spec.Seed = *seed
	}
	spec.TrialTimeout = *trialTimeout

	if !*all && *fig == 0 && *table == "" {
		flag.Usage()
		return fmt.Errorf("pick -fig N, -table NAME, or -all")
	}

	sys, err := core.NewSystemContext(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Println(sys.Describe())

	if *journal != "" {
		j, jerr := sys.AttachJournal(*journal, *resume)
		if jerr != nil {
			return jerr
		}
		fmt.Printf("journal %s: %d trial(s) on file\n", j.Path(), j.Len())
	}
	fmt.Println()

	if !*quiet {
		sys.SetProgress(func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "\r%s: trial %d/%d", label, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	err = func() error {
		if *all {
			for n := 2; n <= 6; n++ {
				if err := printFigure(sys, n, *width, ""); err != nil {
					return err
				}
			}
			return printTable(sys, spec, "summary")
		}
		if *fig != 0 {
			return printFigure(sys, *fig, *width, *csv)
		}
		return printTable(sys, spec, *table)
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr)
		return abort(sys, err, ctx, *report, *journal)
	}

	if *report != "" {
		if err := writeReport(sys.Report(), *report); err != nil {
			return err
		}
	}
	return nil
}

// abort handles a failed sweep: when the failure came from cancellation it
// flushes a partial RunReport marked incomplete (if -report was given) and
// prints the resume hint, then returns the original error either way.
func abort(sys *core.System, runErr error, ctx context.Context, reportPath, journalPath string) error {
	if ctx.Err() == nil {
		return runErr
	}
	rr := sys.Report()
	rr.MarkIncomplete(runErr.Error())
	if reportPath != "" {
		if werr := writeReport(rr, reportPath); werr != nil {
			fmt.Fprintln(os.Stderr, "ecfig: flushing partial report:", werr)
		}
	}
	if journalPath != "" {
		fmt.Fprintf(os.Stderr, "interrupted; completed trials are journaled in %s — rerun with -resume to continue\n", journalPath)
	} else {
		fmt.Fprintln(os.Stderr, "interrupted; rerun with -journal FILE to make sweeps resumable")
	}
	return runErr
}

func writeReport(rr *core.RunReport, path string) error {
	data, err := rr.JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		fmt.Println(string(data))
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func printFigure(sys *core.System, n, width int, csvPath string) error {
	f, err := sys.Figure(n)
	if err != nil {
		return err
	}
	out, err := f.Render(width)
	if err != nil {
		return err
	}
	fmt.Println(out)
	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(f.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csvPath)
	}
	return nil
}

func printFairness(path string) error {
	if path == "" {
		return fmt.Errorf("-table fairness requires -trace FILE (a flight trace from ecserve -trace or the batch recorder)")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	fmt.Println(experiment.FairnessTable(tr).Render())
	return nil
}

func printTable(sys *core.System, spec core.Spec, name string) error {
	env := sys.Env()
	var tab *experiment.Table
	var err error
	switch name {
	case "summary":
		tab, err = sys.SummaryTable()
	case "zmul":
		tab, err = env.AblateZetaMul(sched.LightestLoad{}, []float64{0.6, 0.8, 1.0, 1.2, 1.4})
	case "rthresh":
		tab, err = env.AblateRhoThresh(sched.LightestLoad{}, []float64{0.25, 0.5, 0.75, 0.9})
	case "budget":
		tab, err = env.AblateBudget(sched.LightestLoad{}, []float64{0.6, 0.8, 1.0, 1.2, 1.5, -1})
	case "arrivals":
		tab, err = experiment.AblateArrivals(spec, sched.LightestLoad{})
	case "priority":
		tab, err = env.PriorityStudy([]workload.PriorityClass{
			{Weight: 4, Fraction: 0.25},
			{Weight: 1, Fraction: 0.75},
		})
	case "parking":
		tab, err = env.ParkingStudy(sched.LightestLoad{}, []float64{0.05, 0.25, 1.0, 4.0})
	case "powercv":
		tab, err = env.PowerNoiseStudy(sched.LightestLoad{}, []float64{0.1, 0.25, 0.5})
	case "cancel":
		tab, err = env.CancellationStudy(sched.LightestLoad{})
	case "significance":
		tab, err = env.SignificanceTable()
	case "central":
		tab, err = env.CentralQueueStudy()
	case "mtbf":
		tab, err = env.MTBFStudy(sched.LightestLoad{}, []float64{16, 8, 4, 2})
	case "brownout":
		tab, err = env.BrownoutStudy(sched.LightestLoad{}, []float64{0.7, 0.85, 1.0})
	case "classes":
		tab, err = experiment.ClassStudy(spec, workload.PaperClassMix())
	case "calibration":
		// Observe→predict→calibrate: record every trial under the paper's
		// headline configuration (LL, en+rob) and score the predictions.
		var cal *trace.Calibration
		cal, err = env.CalibrationStudy(nil, experiment.FlightConfig{Heuristic: "LL", Filter: "en+rob"}, 0)
		if err == nil {
			tab = experiment.CalibrationTable(cal)
		}
	default:
		return fmt.Errorf("unknown table %q", name)
	}
	if err != nil {
		return err
	}
	fmt.Println(tab.Render())
	return nil
}
