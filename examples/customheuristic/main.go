// Customheuristic: implement a new immediate-mode allocation policy
// against the library's Heuristic interface and run it through the exact
// harness used for the paper's heuristics.
//
// The policy here, "Slack", assigns each task to the cheapest feasible
// assignment whose *expected* completion leaves a configurable safety
// margin before the deadline — a deterministic cousin of the robustness
// filter that needs no convolutions at all.
//
// Run with:
//
//	go run ./examples/customheuristic
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

// Slack is the custom heuristic. It implements sched.Heuristic (re-exported
// as core.Heuristic).
type Slack struct {
	// Margin is the fraction of the task's remaining time that must be
	// left unused by the expected completion, e.g. 0.2 keeps a 20% buffer.
	Margin float64
}

// Name identifies the policy in results.
func (s Slack) Name() string { return fmt.Sprintf("Slack%.0f%%", s.Margin*100) }

// NeedsRho reports false: the policy reads only expectations, never
// completion-time distributions, so the harness skips all convolutions.
func (Slack) NeedsRho() bool { return false }

// Choose picks the lowest-EEC candidate whose expected completion time
// leaves the margin; if none qualifies it falls back to the minimum
// expected completion time (finish as early as possible and hope).
func (s Slack) Choose(ctx *sched.Context, feasible []*sched.Candidate) *sched.Candidate {
	limit := ctx.Task.Deadline - s.Margin*(ctx.Task.Deadline-ctx.Now)
	var best *sched.Candidate
	for _, c := range feasible {
		if c.ECT() > limit {
			continue
		}
		if best == nil || c.EEC < best.EEC {
			best = c
		}
	}
	if best != nil {
		return best
	}
	// Nothing leaves the margin: minimize expected completion instead.
	best = feasible[0]
	for _, c := range feasible[1:] {
		if c.ECT() < best.ECT() {
			best = c
		}
	}
	return best
}

var _ core.Heuristic = Slack{} // interface check

func main() {
	spec := core.DefaultSpec()
	spec.Trials = 4
	spec.Workload.WindowSize = 300
	spec.Workload.BurstLen = 60

	sys, err := core.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Describe())
	fmt.Println()

	// Run the custom policy (with the energy filter, which composes with
	// any heuristic) against the paper's best configuration.
	rows := []struct {
		label  string
		mapper *core.Mapper
	}{
		{"Slack20+en", &core.Mapper{Heuristic: Slack{Margin: 0.2}, Filters: []core.Filter{sched.EnergyFilter{}}}},
		{"Slack40+en", &core.Mapper{Heuristic: Slack{Margin: 0.4}, Filters: []core.Filter{sched.EnergyFilter{}}}},
		{"LL+en+rob", &core.Mapper{Heuristic: sched.LightestLoad{}, Filters: core.EnergyAndRobustness.Filters()}},
		{"MECT+en+rob", &core.Mapper{Heuristic: sched.MinExpectedCompletionTime{}, Filters: core.EnergyAndRobustness.Filters()}},
	}
	fmt.Printf("%-14s %10s %10s %12s %10s\n", "policy", "med missed", "mean", "mean energy", "exhausted")
	for _, r := range rows {
		vr, err := sys.RunMapper(r.mapper, 0, r.label)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.1f %10.1f %12.4g %6d/%d\n",
			r.label, vr.Summary.Median, vr.Summary.Mean, vr.MeanEnergy,
			vr.ExhaustedTrials, spec.Trials)
	}
	fmt.Println("\nthe custom expectation-only policy competes with the paper's pmf-based")
	fmt.Println("machinery whenever execution-time spread is modest — and costs no convolutions.")
}
