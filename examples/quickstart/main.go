// Quickstart: build the paper's simulation environment at reduced scale,
// run one energy-constrained scheduling experiment, and inspect both the
// aggregate statistics and a single traced trial.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// Start from the paper's setup (§VI) and shrink it so this example
	// finishes in a few seconds: 5 trials of 300 tasks instead of 50×1000.
	spec := core.DefaultSpec()
	spec.Trials = 5
	spec.Workload.WindowSize = 300
	spec.Workload.BurstLen = 60

	sys, err := core.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", sys.Describe())

	// Run the paper's new LL heuristic with both filters — its best
	// configuration (§VII) — over all trials.
	vr, err := sys.RunHeuristic("LL", core.EnergyAndRobustness)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s missed-deadline summary over %d trials:\n  %s\n",
		vr.Label, spec.Trials, vr.Summary)
	fmt.Printf("  energy: mean %.4g of budget %.4g, exhausted in %d/%d trials\n",
		vr.MeanEnergy, sys.Budget(), vr.ExhaustedTrials, spec.Trials)

	// Compare against the unfiltered version to see the filtering effect
	// the paper's §VII reports.
	base, err := sys.RunHeuristic("LL", core.NoFilter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunfiltered LL median misses: %.1f; en+rob: %.1f (%.1f%% fewer)\n",
		base.Summary.Median, vr.Summary.Median,
		100*(base.Summary.Median-vr.Summary.Median)/base.Summary.Median)

	// Zoom into one trial: per-task outcomes with assignments.
	res, err := sys.SimulateOnce("LL", core.EnergyAndRobustness, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrial 0: %s\n", res)
	fmt.Println("first ten task fates:")
	for _, tr := range res.Traces[:10] {
		if tr.Mapped {
			fmt.Printf("  task %3d (type %2d) -> %-12s %-10s slack used %.0f of %.0f\n",
				tr.Task.ID, tr.Task.Type, tr.Assignment, tr.Outcome,
				tr.Finish-tr.Task.Arrival, tr.Task.Deadline-tr.Task.Arrival)
		} else {
			fmt.Printf("  task %3d (type %2d) -> %s\n", tr.Task.ID, tr.Task.Type, tr.Outcome)
		}
	}
}
