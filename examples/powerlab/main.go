// Powerlab: exercise the library's §VIII future-work extensions — the
// energy-management levers the paper names but does not evaluate:
//
//  1. core parking (power gating): idle cores drop to a retention state
//     after a timeout, trading wake latency for idle energy;
//  2. stochastic power draw: actual per-execution power varies around
//     μ(i,π) while the scheduler still plans with the mean;
//  3. central-queue dispatch: tasks commit to a core and P-state when a
//     core is ready, not when they arrive.
//
// Run with:
//
//	go run ./examples/powerlab
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	spec := core.DefaultSpec()
	spec.Trials = 4
	spec.Workload.WindowSize = 300
	spec.Workload.BurstLen = 60

	sys, err := core.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	env := sys.Env()
	fmt.Println(sys.Describe())

	// 1. Parking: sweep the idle timeout. Under the paper's budget the
	// idle power of 58 always-on cores is the dominant energy sink, so
	// parking converts almost directly into completed tasks.
	fmt.Println("\n--- core parking (power gating) ---")
	tab, err := env.ParkingStudy(sched.LightestLoad{}, []float64{0.1, 0.5, 2.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Render())

	// 2. Stochastic power: how much of the budget does mean-planning lose
	// when real draws are noisy?
	fmt.Println("--- stochastic per-execution power ---")
	tab, err = env.PowerNoiseStudy(sched.LightestLoad{}, []float64{0.2, 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Render())

	// 3. Central queue vs immediate mode.
	fmt.Println("--- immediate-mode vs central-queue dispatch ---")
	tab, err = env.CentralQueueStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Render())

	// Bonus: one traced run with parking enabled, to see a parked core
	// wake for the second burst.
	mapper := &core.Mapper{Heuristic: sched.LightestLoad{}, Filters: core.EnergyAndRobustness.Filters()}
	park := sim.ParkPolicy{Enabled: true, Timeout: 0.5 * sys.Model().TAvg(), WakeLatency: 10, PowerFrac: 0.05}
	cfgRes, err := env.RunConfigured(mapper, "park demo", func(c *sim.Config) { c.Park = park })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parked demo: median missed %.1f, %.0f wakeups/trial, %.3g core-tu parked/trial\n",
		cfgRes.Summary.Median, cfgRes.MeanWakeups, cfgRes.MeanParkedTime)
}
