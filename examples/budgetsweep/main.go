// Budgetsweep: quantify how the energy constraint ζ_max shapes the
// missed-deadline outcome. The paper fixes ζ_max = t_avg·p_avg·window and
// notes it is deliberately "insufficient to finish all tasks by their
// deadlines"; this example sweeps the budget from starvation to
// unconstrained and locates where the constraint stops binding, for both
// the paper's best configuration (LL+en+rob) and the unfiltered MECT
// baseline.
//
// Run with:
//
//	go run ./examples/budgetsweep
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
)

func main() {
	spec := core.DefaultSpec()
	spec.Trials = 4
	spec.Workload.WindowSize = 300
	spec.Workload.BurstLen = 60

	sys, err := core.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Describe())
	fmt.Println()

	scales := []float64{0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 0 /* unconstrained */}
	configs := []struct {
		label  string
		mapper *core.Mapper
	}{
		{"LL+en+rob", &core.Mapper{Heuristic: sched.LightestLoad{}, Filters: core.EnergyAndRobustness.Filters()}},
		{"MECT (none)", &core.Mapper{Heuristic: sched.MinExpectedCompletionTime{}}},
	}

	fmt.Printf("%-14s", "ζ_max scale")
	for _, c := range configs {
		fmt.Printf(" %14s", c.label)
	}
	fmt.Println("   (median missed deadlines)")

	for _, sc := range scales {
		label := fmt.Sprintf("%.2f×", sc)
		if sc <= 0 {
			label = "unconstrained"
		}
		fmt.Printf("%-14s", label)
		for _, c := range configs {
			scale := sc
			if sc <= 0 {
				scale = 1e6 // effectively unconstrained without special-casing
			}
			vr, err := sys.RunMapper(c.mapper, scale, label)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.1f/%-3d", vr.Summary.Median, vr.ExhaustedTrials)
		}
		fmt.Println()
	}
	fmt.Println("\ncolumns are median-missed / trials-that-exhausted-the-budget.")
	fmt.Println("expected: at low budgets everything starves (energy, not deadlines, binds);")
	fmt.Println("the filtered heuristic needs a smaller budget to reach its deadline-limited")
	fmt.Println("floor; unconstrained, unfiltered MECT catches up because energy is free.")
}
