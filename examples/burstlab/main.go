// Burstlab: study how the arrival pattern shapes heuristic and filter
// performance — the paper's §VIII asks exactly this ("include a variety of
// arrival rates and patterns, to better understand how the relative
// performance of the heuristics changes").
//
// The lab rebuilds the environment under five arrival patterns (the
// paper's fast–slow–fast bursts, a uniform equilibrium stream, one big
// leading burst, and heavier/milder oversubscription) and reports, for
// each, the unfiltered and en+rob-filtered median missed deadlines of LL,
// plus a filter-variant breakdown under the paper pattern.
//
// Run with:
//
//	go run ./examples/burstlab
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sched"
)

func main() {
	spec := core.DefaultSpec()
	spec.Trials = 4
	spec.Workload.WindowSize = 300
	spec.Workload.BurstLen = 60

	// Part 1: the arrival-pattern sweep (rebuilds the env per pattern; the
	// cluster and pmf tables are identical because the seed is shared).
	fmt.Println("=== arrival-pattern sweep (LL) ===")
	tab, err := experiment.AblateArrivals(spec, sched.LightestLoad{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.Render())

	// Part 2: under the paper's bursty pattern, how does each filter
	// variant respond for a cheap heuristic (SQ) vs the Random baseline?
	// §VII's headline: filters, not heuristics, drive the performance.
	sys, err := core.NewSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== filter variants under the paper's bursts ===")
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "", "none", "en", "rob", "en+rob")
	for _, h := range []string{"SQ", "Random"} {
		fmt.Printf("%-8s", h)
		for _, v := range []core.FilterVariant{core.NoFilter, core.EnergyOnly, core.RobustnessOnly, core.EnergyAndRobustness} {
			vr, err := sys.RunHeuristic(h, v)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.1f", vr.Summary.Median)
		}
		fmt.Println()
	}
	fmt.Println("\n(median missed deadlines; lower is better)")
	fmt.Println("expected shape: filtering helps SQ via 'en'; Random gains most from 'rob';")
	fmt.Println("with 'en+rob' even Random lands near the engineered heuristics (§VII).")
}
